package runpack

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"algspec/internal/loadgen"
	"algspec/internal/serve"
	"algspec/internal/speclib"
)

// queueWorkload builds a small normalize-only battery over Queue with
// golden oracles computed offline, the way the generator does.
func queueWorkload(t *testing.T) []loadgen.Request {
	t.Helper()
	env := speclib.BaseEnv()
	terms := []string{
		"front(add(add(new, 'x), 'y))", // FIFO: the oldest element
		"isEmpty?(remove(add(new, 'a)))",
		"front(add(new, 'z))",
		"front(remove(add(add(add(new, 'a), 'b), 'c)))",
	}
	reqs := make([]loadgen.Request, len(terms))
	for i, src := range terms {
		reqs[i] = loadgen.Request{
			ID: i, Kind: loadgen.KindNormalize, Spec: "Queue", Term: src,
			WantNF: env.MustEval("Queue", src).String(),
		}
	}
	return reqs
}

// recordPack runs the workload against a stock server and writes the
// resulting pack into a temp dir, returning the pack and its directory.
func recordPack(t *testing.T, reqs []loadgen.Request) (*Result, string) {
	t.Helper()
	srv, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL: ts.URL, Seed: 7, Workers: 1, Workload: reqs, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	dir := t.TempDir()
	m := Manifest{
		Kind: KindLoad, Tool: "runpack test",
		BaseVersion: srv.Registry().Base().ID,
		Seed:        7, Mix: "normalize=1", Workers: 1, RetryBudget: 3,
	}
	if err := Write(dir, m, rep, string(metrics)); err != nil {
		t.Fatal(err)
	}
	res, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("fresh pack fails integrity: %v", res.Problems)
	}
	return res, dir
}

// TestWriteVerifyRoundtrip: a pack written from a real run verifies
// clean — digests, books, metrics monotonicity and golden NFs all hold.
func TestWriteVerifyRoundtrip(t *testing.T) {
	_, dir := recordPack(t, queueWorkload(t))
	res, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("verify found problems in a fresh pack:\n%v", res.Problems)
	}
	if res.Manifest.Requests != 4 {
		t.Errorf("manifest records %d requests, want 4", res.Manifest.Requests)
	}
	if len(res.Workload) != 4 || len(res.Outcomes) != 4 {
		t.Errorf("parsed %d workload / %d outcomes, want 4/4", len(res.Workload), len(res.Outcomes))
	}
}

// TestRegressIdenticalOnCleanReplay: replaying a pack against a fresh
// stock server reproduces it exactly.
func TestRegressIdenticalOnCleanReplay(t *testing.T) {
	res, _ := recordPack(t, queueWorkload(t))
	srv, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	diff, err := Regress(res, RegressConfig{BaseURL: ts.URL, CurrentBaseVersion: srv.Registry().Base().ID})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Identical {
		t.Fatalf("clean replay diverged:\n%s", strings.Join(diff.Lines, "\n"))
	}
}

// TestRegressDetectsPerturbedAxiom is the acceptance criterion: perturb
// a single axiom in one library spec (Queue's front, FIFO -> LIFO),
// replay the pack against a server built from the perturbed library,
// and the diff must name the spec and the first divergent term.
func TestRegressDetectsPerturbedAxiom(t *testing.T) {
	res, _ := recordPack(t, queueWorkload(t))

	const goodAxiom = "[4] front(add(q, i)) = if isEmpty?(q) then i else front(q)"
	const badAxiom = "[4] front(add(q, i)) = i"
	perturbed := make([]string, len(speclib.Sources))
	found := false
	for i, src := range speclib.Sources {
		if strings.Contains(src, goodAxiom) {
			src = strings.Replace(src, goodAxiom, badAxiom, 1)
			found = true
		}
		perturbed[i] = src
	}
	if !found {
		t.Fatalf("library no longer contains the Queue front axiom %q", goodAxiom)
	}

	srv, err := serve.NewWithSources(serve.Config{}, perturbed)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	diff, err := Regress(res, RegressConfig{BaseURL: ts.URL, CurrentBaseVersion: srv.Registry().Base().ID})
	if err != nil {
		t.Fatal(err)
	}
	if diff.Identical {
		t.Fatal("regress failed to detect a perturbed axiom")
	}
	joined := strings.Join(diff.Lines, "\n")
	if !strings.Contains(diff.Lines[0], "first divergence") {
		t.Errorf("diff does not lead with the first divergence:\n%s", joined)
	}
	if !strings.Contains(joined, "Queue") {
		t.Errorf("diff does not name the spec:\n%s", joined)
	}
	if !strings.Contains(joined, "front(add(add(new, 'x), 'y))") {
		t.Errorf("diff does not name the first divergent term:\n%s", joined)
	}
	if !strings.Contains(joined, `"'x"`) || !strings.Contains(joined, `"'y"`) {
		t.Errorf("diff does not show recorded vs replayed normal forms:\n%s", joined)
	}
	if diff.Note == "" || !strings.Contains(diff.Note, "spec library changed") {
		t.Errorf("diff note does not flag the changed library: %q", diff.Note)
	}
}

// TestVerifyCatchesGoldenNFDrift: a pack whose recorded golden NF no
// longer matches what the current engine computes fails verification
// with a problem naming the workload line — the serverless half of the
// drift gate.
func TestVerifyCatchesGoldenNFDrift(t *testing.T) {
	res, dir := recordPack(t, queueWorkload(t))

	// Forge a pack that is internally consistent (digests recomputed,
	// outcome NFs agreeing with the forged golden) but whose golden NF is
	// not what the engine answers.
	reqs := append([]loadgen.Request(nil), res.Workload...)
	outs := append([]loadgen.RequestOutcome(nil), res.Outcomes...)
	reqs[0].WantNF = "'y" // engine answers 'x
	outs[0].NF = "'y"
	rep := &loadgen.Report{
		Workload: reqs, Outcomes: outs,
		Success: res.Books.Success, ExpectedFault: res.Books.ExpectedFault,
		RetryExhausted: res.Books.RetryExhausted, Failed: res.Books.Failed,
		Retries: res.Books.Retries, Attempts: res.Books.Attempts,
	}
	forged := filepath.Join(dir, "forged")
	if err := Write(forged, *res.Manifest, rep, res.Metrics); err != nil {
		t.Fatal(err)
	}

	vres, err := Verify(forged)
	if err != nil {
		t.Fatal(err)
	}
	if vres.OK() {
		t.Fatal("verify accepted a pack with a drifted golden NF")
	}
	var hit bool
	for _, p := range vres.Problems {
		if p.File == WorkloadFile && p.Line == 1 && strings.Contains(p.Msg, "golden nf drift") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no golden-nf-drift problem at %s:1; got: %v", WorkloadFile, vres.Problems)
	}
}

// TestVerifyNamesTruncatedFile: deleting lines is corruption too, and
// the problem names the missing line.
func TestVerifyNamesTruncatedFile(t *testing.T) {
	_, dir := recordPack(t, queueWorkload(t))
	path := filepath.Join(dir, ResultsFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(path, []byte(strings.Join(lines[:len(lines)-2], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, p := range res.Problems {
		if p.File == ResultsFile && strings.Contains(p.Msg, "truncated") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("truncation not named; got: %v", res.Problems)
	}
}
