package runpack

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"algspec/internal/loadgen"
	"algspec/internal/speclib"
)

// Problem is one named verification failure. Line is 1-based within
// File; 0 means the problem is about the file as a whole.
type Problem struct {
	File string
	Line int
	Msg  string
}

func (p Problem) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("%s:%d: %s", p.File, p.Line, p.Msg)
	}
	return fmt.Sprintf("%s: %s", p.File, p.Msg)
}

// Result is a pack as read off disk: the parsed artifacts plus every
// problem found. Regress reuses the parsed pieces so the pack is read
// (and integrity-checked) exactly once.
type Result struct {
	Dir      string
	Manifest *Manifest
	Workload []loadgen.Request
	Outcomes []loadgen.RequestOutcome
	Books    *Books
	Metrics  string
	Problems []Problem
}

// OK reports whether the pack survived with no problems.
func (r *Result) OK() bool { return len(r.Problems) == 0 }

func (r *Result) problemf(file string, line int, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{File: file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

// Verify re-checks a pack from first principles: every per-line digest
// and the whole-pack footer, then the pack's internal consistency —
// the books balance and reconcile against the metrics snapshot, the
// metrics histograms are monotone, and every golden normal form
// re-normalizes byte-for-byte through the current engine. The error
// return is infrastructure only (the directory is unreadable);
// everything a verification should flag lands in Result.Problems.
func Verify(dir string) (*Result, error) {
	res, err := read(dir)
	if err != nil {
		return nil, err
	}
	if res.Manifest == nil {
		return res, nil // nothing below is meaningful without a manifest
	}
	res.checkMetricsMonotone()
	if res.Manifest.Kind == KindLoad {
		res.checkBooks()
		res.checkGoldenNFs()
	}
	return res, nil
}

// Read loads and integrity-checks a pack without the semantic
// re-verification (Regress uses it: replay is its own semantic check).
func Read(dir string) (*Result, error) { return read(dir) }

// read loads the pack, checking the digest footer and parsing every
// artifact. All failures become Problems; the error return is reserved
// for an unreadable directory.
func read(dir string) (*Result, error) {
	if fi, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("runpack: %w", err)
	} else if !fi.IsDir() {
		return nil, fmt.Errorf("runpack: %s is not a directory", dir)
	}
	res := &Result{Dir: dir}

	files := map[string]string{}
	readFile := func(name string) (string, bool) {
		if c, ok := files[name]; ok {
			return c, true
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				res.problemf(name, 0, "missing from pack")
			} else {
				res.problemf(name, 0, "unreadable: %v", err)
			}
			return "", false
		}
		files[name] = string(data)
		return files[name], true
	}

	// The manifest decides which files the pack is supposed to hold.
	var kind string
	if data, ok := readFile(ManifestFile); ok {
		m, err := ParseManifest([]byte(data))
		if err != nil {
			res.problemf(ManifestFile, 0, "%v", err)
		} else {
			res.Manifest = m
			kind = m.Kind
		}
	}

	// Digest check: every line of every expected file must carry the
	// recorded digest, and the footer must cover the recorded entries.
	if data, ok := readFile(DigestsFile); ok {
		res.checkDigests(data, kind, readFile)
	}

	if kind == KindLoad {
		if data, ok := readFile(WorkloadFile); ok {
			res.parseWorkload(data)
		}
		if data, ok := readFile(ResultsFile); ok {
			res.parseResults(data)
		}
		if data, ok := readFile(BooksFile); ok {
			var b Books
			if err := json.Unmarshal([]byte(data), &b); err != nil {
				res.problemf(BooksFile, 0, "does not parse: %v", err)
			} else {
				res.Books = &b
			}
		}
		readFile(ReportFile)
	}
	if data, ok := readFile(MetricsFile); ok {
		res.Metrics = data
	}
	return res, nil
}

// checkDigests verifies digests.txt itself (header, entry grammar,
// whole-pack footer) and then every recorded per-line digest against
// the named file's actual bytes. A single flipped byte anywhere in the
// pack lands here as a problem naming the file and line.
func (r *Result) checkDigests(data, kind string, readFile func(string) (string, bool)) {
	lines := contentLines(data)
	if len(lines) < 2 {
		r.problemf(DigestsFile, 0, "too short to be a digest footer (%d line(s))", len(lines))
		return
	}
	if lines[0] != digestsHeader {
		r.problemf(DigestsFile, 1, "header %q unrecognized (want %q)", lines[0], digestsHeader)
		return
	}
	footerLine := len(lines)
	entries := lines[1 : len(lines)-1]

	// Whole-pack digest over the entry lines, as Write computed it.
	whole := sha256.New()
	for _, e := range entries {
		whole.Write([]byte(e))
		whole.Write([]byte{'\n'})
	}
	wantFooter := digestsFooter + hex.EncodeToString(whole.Sum(nil))
	if lines[len(lines)-1] != wantFooter {
		r.problemf(DigestsFile, footerLine, "whole-pack digest mismatch (footer disagrees with the digest entries)")
	}

	known := map[string]bool{}
	for _, name := range packFiles(kind) {
		known[name] = true
	}
	// recorded[file] maps line number -> digest, in recorded order.
	recorded := map[string]map[int]string{}
	for i, e := range entries {
		lineNo := i + 2 // 1-based, after the header
		digest, rest, ok := strings.Cut(e, " ")
		if !ok || len(digest) != 16 {
			r.problemf(DigestsFile, lineNo, "malformed digest entry %q", e)
			continue
		}
		name, lineStr, ok := strings.Cut(rest, ":")
		lineRef, err := strconv.Atoi(lineStr)
		if !ok || err != nil || lineRef < 1 {
			r.problemf(DigestsFile, lineNo, "malformed digest entry %q", e)
			continue
		}
		if kind != "" && !known[name] {
			r.problemf(DigestsFile, lineNo, "digest recorded for %q, which is not a %s-pack file", name, kind)
			continue
		}
		if recorded[name] == nil {
			recorded[name] = map[int]string{}
		}
		if _, dup := recorded[name][lineRef]; dup {
			r.problemf(DigestsFile, lineNo, "duplicate digest entry for %s:%d", name, lineRef)
			continue
		}
		recorded[name][lineRef] = digest
	}

	// Expected files come from the manifest kind; with no manifest we
	// still check whatever the footer names.
	names := packFiles(kind)
	if kind == "" {
		names = loadgen.SortedKeys(recorded)
	}
	for _, name := range names {
		content, ok := readFile(name)
		if !ok {
			continue
		}
		fileLines := contentLines(content)
		recs := recorded[name]
		if recs == nil {
			r.problemf(DigestsFile, 0, "no digests recorded for %s", name)
			continue
		}
		for i, line := range fileLines {
			want, ok := recs[i+1]
			if !ok {
				r.problemf(DigestsFile, 0, "no digest recorded for %s:%d", name, i+1)
				continue
			}
			if got := lineDigest(line); got != want {
				r.problemf(name, i+1, "digest mismatch (recorded %s, content hashes to %s)", want, got)
			}
		}
		for lineRef := range recs {
			if lineRef > len(fileLines) {
				r.problemf(name, lineRef, "digest recorded but file has only %d line(s) (truncated?)", len(fileLines))
			}
		}
	}
}

func (r *Result) parseWorkload(data string) {
	for i, line := range contentLines(data) {
		var e WorkloadEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			r.problemf(WorkloadFile, i+1, "does not parse: %v", err)
			return
		}
		if e.ID != i {
			r.problemf(WorkloadFile, i+1, "request id %d out of sequence (want %d)", e.ID, i)
		}
		req, err := e.Request()
		if err != nil {
			r.problemf(WorkloadFile, i+1, "%v", err)
			return
		}
		r.Workload = append(r.Workload, req)
	}
}

func (r *Result) parseResults(data string) {
	valid := map[string]bool{
		loadgen.OutcomeSuccess: true, loadgen.OutcomeExpectedFault: true,
		loadgen.OutcomeRetryExhausted: true, loadgen.OutcomeFailed: true,
	}
	for i, line := range contentLines(data) {
		var o loadgen.RequestOutcome
		if err := json.Unmarshal([]byte(line), &o); err != nil {
			r.problemf(ResultsFile, i+1, "does not parse: %v", err)
			return
		}
		if o.ID != i {
			r.problemf(ResultsFile, i+1, "outcome id %d out of sequence (want %d)", o.ID, i)
		}
		if !valid[o.Class] {
			r.problemf(ResultsFile, i+1, "unknown outcome class %q", o.Class)
		}
		r.Outcomes = append(r.Outcomes, o)
	}
}

// checkBooks cross-checks the three recordings of the same run: the
// per-request results, the aggregated books, and the server's metrics
// snapshot. Any two disagreeing means the pack was tampered with or
// the producer was broken — either way, worth a named problem.
func (r *Result) checkBooks() {
	m, b := r.Manifest, r.Books
	if len(r.Workload) != m.Requests {
		r.problemf(WorkloadFile, 0, "holds %d request(s), manifest says %d", len(r.Workload), m.Requests)
	}
	if len(r.Outcomes) != len(r.Workload) {
		r.problemf(ResultsFile, 0, "holds %d outcome(s) for %d request(s)", len(r.Outcomes), len(r.Workload))
	}
	if b == nil {
		return
	}
	if sum := b.Success + b.ExpectedFault + b.RetryExhausted + b.Failed; sum != int64(m.Requests) {
		r.problemf(BooksFile, 0, "outcome partition sums to %d, not the %d request(s) run", sum, m.Requests)
	}
	counts := map[string]int64{}
	for _, o := range r.Outcomes {
		counts[o.Class]++
	}
	for class, want := range map[string]int64{
		loadgen.OutcomeSuccess:        b.Success,
		loadgen.OutcomeExpectedFault:  b.ExpectedFault,
		loadgen.OutcomeRetryExhausted: b.RetryExhausted,
		loadgen.OutcomeFailed:         b.Failed,
	} {
		if counts[class] != want {
			r.problemf(BooksFile, 0, "books say %d %s outcome(s), results hold %d", want, class, counts[class])
		}
	}
	// Results with a golden oracle must agree with the workload they
	// answer: a successful normalize records exactly the golden NF.
	for i, o := range r.Outcomes {
		if i >= len(r.Workload) {
			break
		}
		req := r.Workload[i]
		if o.Class == loadgen.OutcomeSuccess && req.Kind == loadgen.KindNormalize && o.NF != req.WantNF {
			r.problemf(ResultsFile, i+1, "successful normalize of %s %q recorded nf %q, golden nf is %q",
				req.Spec, req.Term, o.NF, req.WantNF)
		}
	}
	// The client's attempt books must reconcile against the server's
	// request counter, both directions (the loadgen soak contract).
	server := loadgen.ParseRequestsTotal(r.Metrics)
	for _, key := range loadgen.SortedKeys(b.Attempts) {
		if strings.HasSuffix(key, ":transport-error") {
			continue // never reached the server; no counter to match
		}
		if server[key] != b.Attempts[key] {
			r.problemf(MetricsFile, r.metricsLine(requestsTotalLine(key)),
				"adt_requests_total[%s] is %d, books record %d attempt(s)", key, server[key], b.Attempts[key])
		}
	}
	for _, key := range loadgen.SortedKeys(server) {
		if b.Attempts[key] == 0 {
			r.problemf(BooksFile, 0, "server counted %d request(s) for %s, books record none", server[key], key)
		}
	}
}

// requestsTotalLine renders the exposition line prefix for an
// "endpoint:status" attempt key, for locating it in the snapshot.
func requestsTotalLine(key string) string {
	ep, code, _ := strings.Cut(key, ":")
	return fmt.Sprintf("adt_requests_total{endpoint=%q,code=%q}", ep, code)
}

// metricsLine finds the 1-based line number of the first metrics line
// with the given prefix (0 when absent).
func (r *Result) metricsLine(prefix string) int {
	for i, line := range contentLines(r.Metrics) {
		if strings.HasPrefix(line, prefix) {
			return i + 1
		}
	}
	return 0
}

var (
	bucketRe = regexp.MustCompile(`^adt_request_duration_seconds_bucket\{endpoint="([a-z]+)",le="([^"]+)"\} (\d+)$`)
	countRe  = regexp.MustCompile(`^adt_request_duration_seconds_count\{endpoint="([a-z]+)"\} (\d+)$`)
)

// checkMetricsMonotone walks the latency histograms in the snapshot:
// cumulative bucket counts must be non-decreasing within an endpoint,
// and the +Inf bucket must equal the endpoint's _count. A tampered
// count breaks one of these even when the digest footer was recomputed
// to match.
func (r *Result) checkMetricsMonotone() {
	type state struct {
		prev int64
		inf  int64
	}
	states := map[string]*state{}
	infSeen := map[string]bool{}
	for i, line := range contentLines(r.Metrics) {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			ep, le := m[1], m[2]
			v, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				r.problemf(MetricsFile, i+1, "bucket count %q does not parse", m[3])
				continue
			}
			st := states[ep]
			if st == nil {
				st = &state{}
				states[ep] = st
			}
			if v < st.prev {
				r.problemf(MetricsFile, i+1, "histogram for %s not monotone: bucket le=%q holds %d after %d", ep, le, v, st.prev)
			}
			st.prev = v
			if le == "+Inf" {
				st.inf = v
				infSeen[ep] = true
			}
		} else if m := countRe.FindStringSubmatch(line); m != nil {
			ep := m[1]
			v, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				r.problemf(MetricsFile, i+1, "count %q does not parse", m[2])
				continue
			}
			if st := states[ep]; st != nil && infSeen[ep] && st.inf != v {
				r.problemf(MetricsFile, i+1, "histogram for %s: +Inf bucket holds %d but _count is %d", ep, st.inf, v)
			}
		}
	}
}

// checkGoldenNFs re-normalizes every golden oracle in the workload
// through the current engine and requires byte-for-byte agreement —
// the strongest check in the pack: it holds only if the spec library,
// the parser, the rewrite engine and the term printer all still behave
// as they did when the pack was recorded.
func (r *Result) checkGoldenNFs() {
	env := speclib.BaseEnv()
	type pair struct{ spec, term string }
	seen := map[pair]bool{}
	const maxNamed = 5
	var drifts int
	for i, req := range r.Workload {
		if req.Kind != loadgen.KindNormalize || req.WantNF == "" {
			continue
		}
		p := pair{req.Spec, req.Term}
		if seen[p] {
			continue
		}
		seen[p] = true
		nf, err := env.Eval(req.Spec, req.Term)
		if err != nil {
			drifts++
			if drifts <= maxNamed {
				r.problemf(WorkloadFile, i+1, "golden term %s %q does not re-normalize: %v", req.Spec, req.Term, err)
			}
			continue
		}
		if got := nf.String(); got != req.WantNF {
			drifts++
			if drifts <= maxNamed {
				r.problemf(WorkloadFile, i+1, "golden nf drift for %s %q: engine now answers %q, pack records %q",
					req.Spec, req.Term, got, req.WantNF)
			}
		}
	}
	if drifts > maxNamed {
		r.problemf(WorkloadFile, 0, "... and %d more golden nf drift(s)", drifts-maxNamed)
	}
}
