// Package sema performs semantic analysis: it turns a parsed ast.Spec into
// a checked spec.Spec. Analysis resolves the uses-hierarchy, builds the
// flattened signature, disambiguates bare names into variables or nullary
// operations, sort-checks every axiom, and enforces the shape restrictions
// the paper's relations obey (the left side of an axiom is an operation
// application built from constructors and variables; conditionals and
// error appear only on the right).
package sema

import (
	"fmt"
	"strconv"

	"algspec/internal/ast"
	"algspec/internal/sig"
	"algspec/internal/spec"
	"algspec/internal/term"
)

// Resolver supplies previously checked specifications by name, for
// resolving uses-clauses.
type Resolver func(name string) (*spec.Spec, bool)

// Error is a positioned semantic error.
type Error struct {
	Spec string
	Pos  ast.Pos
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("spec %s: %s: %s", e.Spec, e.Pos, e.Msg)
}

// Build checks one parsed specification against an environment of already
// checked specifications.
func Build(sp *ast.Spec, resolve Resolver) (*spec.Spec, error) {
	c := &checker{astSpec: sp, resolve: resolve}
	return c.run()
}

type checker struct {
	astSpec *ast.Spec
	resolve Resolver
	out     *spec.Spec
	vars    map[string]sig.Sort
}

func (c *checker) errf(pos ast.Pos, format string, args ...any) error {
	return &Error{Spec: c.astSpec.Name, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) run() (*spec.Spec, error) {
	sp := c.astSpec
	out := &spec.Spec{Name: sp.Name, Sig: sig.New(sp.Name)}
	c.out = out

	// Resolve uses and merge their flattened signatures and axioms.
	includedOwner := make(map[string]bool)
	for _, u := range sp.Uses {
		used, ok := c.resolve(u.Name)
		if !ok {
			return nil, c.errf(u.Pos, "uses unknown specification %s", u.Name)
		}
		out.Uses = append(out.Uses, u.Name)
		if err := out.Sig.Merge(used.Sig); err != nil {
			return nil, c.errf(u.Pos, "%v", err)
		}
		for _, a := range used.All {
			if includedOwner[a.Owner+"\x00"+a.Label] {
				continue
			}
			includedOwner[a.Owner+"\x00"+a.Label] = true
			out.All = append(out.All, a)
		}
	}

	// Declare sorts: params, atom sorts, auxiliary sorts, then the
	// principal sort (named after the spec) if the spec mentions it.
	for _, d := range sp.Params {
		if err := out.Sig.AddParam(sig.Sort(d.Name)); err != nil {
			return nil, c.errf(d.Pos, "%v", err)
		}
		out.OwnSorts = append(out.OwnSorts, sig.Sort(d.Name))
	}
	for _, d := range sp.Atoms {
		if out.Sig.HasSort(sig.Sort(d.Name)) {
			if err := out.Sig.MarkAtomSort(sig.Sort(d.Name)); err != nil {
				return nil, c.errf(d.Pos, "%v", err)
			}
			continue
		}
		if err := out.Sig.AddAtomSort(sig.Sort(d.Name)); err != nil {
			return nil, c.errf(d.Pos, "%v", err)
		}
		out.OwnSorts = append(out.OwnSorts, sig.Sort(d.Name))
	}
	for _, d := range sp.Sorts {
		if err := out.Sig.AddSort(sig.Sort(d.Name)); err != nil {
			return nil, c.errf(d.Pos, "%v", err)
		}
		out.OwnSorts = append(out.OwnSorts, sig.Sort(d.Name))
	}
	if c.mentionsPrincipalSort() && !out.Sig.HasSort(sig.Sort(sp.Name)) {
		if err := out.Sig.AddSort(sig.Sort(sp.Name)); err != nil {
			return nil, c.errf(sp.Pos, "%v", err)
		}
		out.OwnSorts = append(out.OwnSorts, sig.Sort(sp.Name))
	}

	// Declare operations.
	for _, d := range sp.Ops {
		op := &sig.Operation{
			Name:   d.Name,
			Range:  sig.Sort(d.Range),
			Owner:  sp.Name,
			Native: d.Native,
		}
		for _, ds := range d.Domain {
			op.Domain = append(op.Domain, sig.Sort(ds))
		}
		for _, ds := range op.Domain {
			if !out.Sig.HasSort(ds) {
				return nil, c.errf(d.Pos, "operation %s: unknown sort %s", d.Name, ds)
			}
		}
		if !out.Sig.HasSort(op.Range) {
			return nil, c.errf(d.Pos, "operation %s: unknown range sort %s", d.Name, op.Range)
		}
		if err := out.Sig.Declare(op); err != nil {
			return nil, c.errf(d.Pos, "%v", err)
		}
		out.OwnOps = append(out.OwnOps, d.Name)
	}

	// Declare variables.
	c.vars = make(map[string]sig.Sort)
	for _, d := range sp.Vars {
		so := sig.Sort(d.Sort)
		if !out.Sig.HasSort(so) {
			return nil, c.errf(d.Pos, "variable declaration: unknown sort %s", d.Sort)
		}
		for _, n := range d.Names {
			if _, dup := c.vars[n]; dup {
				return nil, c.errf(d.Pos, "variable %s declared twice", n)
			}
			if _, isOp := out.Sig.Op(n); isOp {
				return nil, c.errf(d.Pos, "variable %s shadows an operation of the same name", n)
			}
			c.vars[n] = so
		}
	}

	// Check axioms.
	for i, axd := range sp.Axioms {
		ax, err := c.axiom(axd, i+1)
		if err != nil {
			return nil, err
		}
		out.Own = append(out.Own, ax)
		out.All = append(out.All, ax)
	}

	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// mentionsPrincipalSort reports whether any declaration refers to the sort
// named after the spec, in which case the sort is introduced implicitly
// (the common case: "spec Queue" declares sort Queue).
func (c *checker) mentionsPrincipalSort() bool {
	name := c.astSpec.Name
	for _, d := range c.astSpec.Ops {
		if d.Range == name {
			return true
		}
		for _, ds := range d.Domain {
			if ds == name {
				return true
			}
		}
	}
	for _, d := range c.astSpec.Vars {
		if d.Sort == name {
			return true
		}
	}
	return false
}

func (c *checker) axiom(axd *ast.Axiom, ordinal int) (*spec.Axiom, error) {
	label := axd.Label
	if label == "" {
		label = strconv.Itoa(ordinal)
	}
	lhs, err := c.expr(axd.LHS, "", true)
	if err != nil {
		return nil, err
	}
	if lhs.Kind != term.Op || lhs.IsIf() {
		return nil, c.errf(axd.Pos, "axiom %s: left-hand side must be an operation application, got %s", label, lhs)
	}
	if op, _ := c.out.Sig.Op(lhs.Sym); op != nil && op.Native {
		return nil, c.errf(axd.Pos, "axiom %s: cannot state axioms about native operation %s", label, lhs.Sym)
	}
	rhs, err := c.expr(axd.RHS, lhs.Sort, false)
	if err != nil {
		return nil, err
	}
	ax := &spec.Axiom{Label: label, Owner: c.astSpec.Name, LHS: lhs, RHS: rhs}
	return ax, nil
}

// expr type-checks an expression. expected is the sort required by
// context, or "" to infer; onLHS restricts the expression to pattern form
// (no if, no error).
func (c *checker) expr(e ast.Expr, expected sig.Sort, onLHS bool) (*term.Term, error) {
	switch e := e.(type) {
	case *ast.ErrorLit:
		if onLHS {
			return nil, c.errf(e.Pos, "error may not appear on the left-hand side of an axiom")
		}
		if expected == "" {
			return nil, c.errf(e.Pos, "cannot infer the sort of error here; annotate the context")
		}
		return term.NewErr(expected), nil

	case *ast.AtomLit:
		so, err := c.atomSort(e, expected)
		if err != nil {
			return nil, err
		}
		return term.NewAtom(e.Spelling, so), nil

	case *ast.If:
		if onLHS {
			return nil, c.errf(e.Pos, "conditionals may not appear on the left-hand side of an axiom")
		}
		cond, err := c.expr(e.Cond, sig.BoolSort, false)
		if err != nil {
			return nil, err
		}
		var then, els *term.Term
		if expected != "" {
			if then, err = c.expr(e.Then, expected, false); err != nil {
				return nil, err
			}
			if els, err = c.expr(e.Else, expected, false); err != nil {
				return nil, err
			}
		} else {
			// Infer from whichever branch determines a sort.
			then, err = c.expr(e.Then, "", false)
			if err != nil {
				if els, err = c.expr(e.Else, "", false); err != nil {
					return nil, err
				}
				if then, err = c.expr(e.Then, els.Sort, false); err != nil {
					return nil, err
				}
			} else {
				if els, err = c.expr(e.Else, then.Sort, false); err != nil {
					return nil, err
				}
			}
		}
		t := term.NewIf(cond, then, els)
		if then.Kind == term.Err && els.Kind != term.Err {
			t.Sort = els.Sort
		}
		return t, nil

	case *ast.Call:
		return c.call(e, expected, onLHS)

	default:
		return nil, c.errf(e.ExprPos(), "internal: unknown expression %T", e)
	}
}

// atomish reports whether a sort admits atom literals: declared atom
// sorts, and parameter sorts (atoms serve as the arbitrary values a
// parameter sort like Item ranges over).
func (c *checker) atomish(so sig.Sort) bool {
	return c.out.Sig.IsAtomSort(so) || c.out.Sig.IsParam(so)
}

func (c *checker) atomSort(e *ast.AtomLit, expected sig.Sort) (sig.Sort, error) {
	if e.SortAnno != "" {
		so := sig.Sort(e.SortAnno)
		if !c.atomish(so) {
			return "", c.errf(e.Pos, "'%s: %s is not an atom or parameter sort", e.Spelling, e.SortAnno)
		}
		if expected != "" && expected != so {
			return "", c.errf(e.Pos, "'%s has sort %s, but %s is required here", e.Spelling, so, expected)
		}
		return so, nil
	}
	if expected != "" {
		if !c.atomish(expected) {
			return "", c.errf(e.Pos, "'%s used where sort %s is required, but %s is not an atom or parameter sort", e.Spelling, expected, expected)
		}
		return expected, nil
	}
	var atomSorts []sig.Sort
	for _, so := range c.out.Sig.Sorts() {
		if c.atomish(so) {
			atomSorts = append(atomSorts, so)
		}
	}
	switch len(atomSorts) {
	case 0:
		return "", c.errf(e.Pos, "'%s used, but no atom sorts are in scope", e.Spelling)
	case 1:
		return atomSorts[0], nil
	default:
		return "", c.errf(e.Pos, "'%s is ambiguous (atom sorts in scope: %v); annotate as '%s:Sort", e.Spelling, atomSorts, e.Spelling)
	}
}

func (c *checker) call(e *ast.Call, expected sig.Sort, onLHS bool) (*term.Term, error) {
	// Bare name: variable first, then nullary operation.
	if !e.Parens && len(e.Args) == 0 {
		if so, ok := c.vars[e.Name]; ok {
			if expected != "" && so != expected {
				return nil, c.errf(e.Pos, "variable %s has sort %s, but %s is required here", e.Name, so, expected)
			}
			return term.NewVar(e.Name, so), nil
		}
	}
	op, ok := c.out.Sig.Op(e.Name)
	if !ok {
		if _, isVar := c.vars[e.Name]; isVar {
			return nil, c.errf(e.Pos, "variable %s cannot be applied to arguments", e.Name)
		}
		return nil, c.errf(e.Pos, "unknown operation %s", e.Name)
	}
	if len(e.Args) != op.Arity() {
		return nil, c.errf(e.Pos, "operation %s applied to %d arguments, wants %d (%s)", e.Name, len(e.Args), op.Arity(), op)
	}
	args := make([]*term.Term, len(e.Args))
	for i, a := range e.Args {
		t, err := c.expr(a, op.Domain[i], onLHS)
		if err != nil {
			return nil, err
		}
		args[i] = t
	}
	if expected != "" && op.Range != expected {
		return nil, c.errf(e.Pos, "operation %s has range %s, but %s is required here", e.Name, op.Range, expected)
	}
	return term.NewOp(op.Name, op.Range, args...), nil
}

// CheckGroundExpr type-checks a standalone expression against a spec with
// no variables in scope (used for evaluating ground terms from the CLI and
// examples). The expected sort may be "" to infer.
func CheckGroundExpr(sp *spec.Spec, e ast.Expr, expected sig.Sort) (*term.Term, error) {
	c := &checker{
		astSpec: &ast.Spec{Name: sp.Name},
		out:     sp,
		vars:    map[string]sig.Sort{},
	}
	t, err := c.expr(e, expected, false)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// CheckExprWithVars type-checks a standalone expression with the given
// variable environment (used by the representation verifier to state
// assumptions and Φ rules textually).
func CheckExprWithVars(sp *spec.Spec, e ast.Expr, vars map[string]sig.Sort, expected sig.Sort) (*term.Term, error) {
	c := &checker{
		astSpec: &ast.Spec{Name: sp.Name},
		out:     sp,
		vars:    vars,
	}
	return c.expr(e, expected, false)
}
