package sema_test

import (
	"strings"
	"testing"

	"algspec/internal/core"
	"algspec/internal/sig"
	"algspec/internal/speclib"
	"algspec/internal/term"
)

// load parses and checks sources in order inside a fresh env preloaded
// with Bool/Identifier/Attrs, returning the error from the last source.
func load(t *testing.T, srcs ...string) (*core.Env, error) {
	t.Helper()
	env := core.NewEnv()
	env.MustLoad(speclib.Bool, speclib.Identifier, speclib.Attrs)
	var err error
	for _, src := range srcs {
		_, err = env.Load(src)
		if err != nil {
			return env, err
		}
	}
	return env, nil
}

func TestBuildQueue(t *testing.T) {
	env, err := load(t, speclib.Queue)
	if err != nil {
		t.Fatal(err)
	}
	sp := env.MustGet("Queue")
	if got, _ := sp.PrincipalSort(); got != "Queue" {
		t.Errorf("principal sort = %q", got)
	}
	if !sp.Sig.IsParam("Item") {
		t.Error("Item not a param")
	}
	if len(sp.Own) != 6 {
		t.Errorf("own axioms = %d", len(sp.Own))
	}
	// Inherited Bool axioms come first in All.
	if sp.All[0].Owner != "Bool" {
		t.Errorf("first inherited owner = %s", sp.All[0].Owner)
	}
	// Constructors are new and add.
	ctors := sp.Constructors("Queue")
	if len(ctors) != 2 || ctors[0].Name != "new" || ctors[1].Name != "add" {
		t.Errorf("constructors = %v", ctors)
	}
}

func TestBuildLabelsDefault(t *testing.T) {
	env, err := load(t, `
spec P
  uses Bool
  ops
    mk : -> P
    f  : P -> Bool
  axioms
    f(mk) = true
end`)
	if err != nil {
		t.Fatal(err)
	}
	sp := env.MustGet("P")
	if sp.Own[0].Label != "1" {
		t.Errorf("default label = %q", sp.Own[0].Label)
	}
}

// buildErr asserts a source fails with a message containing want.
func buildErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := load(t, src)
	if err == nil {
		t.Fatalf("accepted bad spec (want %q):\n%s", want, src)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err.Error(), want)
	}
}

func TestErrors(t *testing.T) {
	buildErr(t, `spec A uses Missing end`, "unknown specification")
	buildErr(t, `spec A ops c : -> Nope end`, "unknown range sort")
	buildErr(t, `spec A ops c : Nope -> A end`, "unknown sort")
	buildErr(t, `spec A ops c : -> A  c : -> A end`, "declared twice")
	buildErr(t, `spec A uses Bool ops c : -> A vars x : Nope end`, "unknown sort")
	buildErr(t, `spec A uses Bool ops c : -> A vars x, x : A end`, "declared twice")
	buildErr(t, `spec A ops c : -> A vars c : A end`, "shadows an operation")
	buildErr(t, `spec A uses Bool ops c : -> A  f : A -> Bool axioms f(boom) = true end`, "unknown operation")
	buildErr(t, `spec A uses Bool ops c : -> A  f : A -> Bool axioms f(c, c) = true end`, "wants 1")
	buildErr(t, `spec A uses Bool ops c : -> A  f : A -> Bool axioms f(true) = true end`, "required here")
	buildErr(t, `spec A uses Bool ops c : -> A  f : A -> Bool vars x : A axioms x = c end`, "must be an operation application")
	buildErr(t, `spec A uses Bool ops c : -> A  f : A -> Bool axioms error = true end`, "left-hand side")
	buildErr(t, `spec A uses Bool ops c : -> A  f : A -> Bool axioms if true then true else true = true end`, "left-hand side")
	buildErr(t, `spec A uses Bool ops c : -> A f : A -> Bool vars x : A axioms f(if true then x else x) = true end`, "may not appear on the left")
	buildErr(t, `spec A uses Bool ops c : -> A  f : A -> A vars x, y : A axioms f(x) = y end`, "does not occur on the left")
	buildErr(t, `spec A uses Bool ops native n : A, A -> Bool  c : -> A axioms n(c, c) = true end`, "native operation")
	buildErr(t, `spec A uses Bool ops c : -> A  f : A -> Bool axioms f(c) = c end`, "required here")
}

func TestAtomInference(t *testing.T) {
	// Single atom sort in scope: unannotated atoms resolve to it.
	env, err := load(t, `
spec A
  uses Bool, Identifier
  ops
    mk : Identifier -> A
    f  : A -> Bool
  axioms
    f(mk('x)) = true
end`)
	if err != nil {
		t.Fatal(err)
	}
	ax := env.MustGet("A").Own[0]
	atomArg := ax.LHS.Args[0].Args[0]
	if atomArg.Kind != term.Atom || atomArg.Sort != "Identifier" {
		t.Errorf("atom = %#v", atomArg)
	}

	// Two atom sorts in scope and no expected sort from context: the
	// atom is ambiguous; an annotation disambiguates.
	st := speclib.BaseEnv()
	if _, err := st.ParseTerm("Symboltable", "'x"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous atom error = %v", err)
	}
	if _, err := st.ParseTerm("Symboltable", "'x:Attrs"); err != nil {
		t.Errorf("annotated atom rejected: %v", err)
	}
	env2, err := load(t, `
spec C
  uses Bool, Identifier, Attrs
  ops
    mk : Identifier -> C
    g  : C -> Bool
  axioms
    g(mk('x:Identifier)) = true
end`)
	if err != nil {
		t.Fatal(err)
	}
	_ = env2
}

func TestAtomSortErrors(t *testing.T) {
	buildErr(t, `
spec D
  uses Bool
  ops
    c : -> D
    f : D -> Bool
  axioms
    f('x:D) = true
end`, "not an atom or parameter sort")
	buildErr(t, `
spec E
  uses Bool
  ops
    c : -> E
    f : E -> Bool
  axioms
    f('x) = true
end`, "")
}

func TestErrorSortInference(t *testing.T) {
	// error adopts the sort required by context; as a bare RHS it
	// adopts the LHS sort.
	env, err := load(t, `
spec F
  uses Bool
  ops
    c : -> F
    f : F -> F
  axioms
    f(c) = error
end`)
	if err != nil {
		t.Fatal(err)
	}
	ax := env.MustGet("F").Own[0]
	if !ax.RHS.IsErr() {
		t.Errorf("RHS = %s", ax.RHS)
	}
}

func TestIfBranchInference(t *testing.T) {
	// One branch error, the other determines the sort.
	env, err := load(t, `
spec G
  uses Bool
  ops
    c : -> G
    p : G -> Bool
    f : G -> G
  vars x : G
  axioms
    f(x) = if p(x) then error else c
end`)
	if err != nil {
		t.Fatal(err)
	}
	rhs := env.MustGet("G").Own[0].RHS
	if !rhs.IsIf() || rhs.Sort != "G" {
		t.Errorf("RHS = %s sort %s", rhs, rhs.Sort)
	}
	// Condition must be boolean.
	buildErr(t, `
spec H
  uses Bool
  ops
    c : -> H
    f : H -> H
  vars x : H
  axioms
    f(x) = if c then x else x
end`, "required here")
}

func TestUsesDeduplication(t *testing.T) {
	// Diamond: both paths import Bool; its axioms appear once.
	env := core.NewEnv()
	env.MustLoad(speclib.Bool)
	env.MustLoad(`spec L uses Bool ops lv : -> L end`)
	env.MustLoad(`spec R uses Bool ops rv : -> R end`)
	sps, err := env.Load(`spec D uses L, R ops dv : -> D end`)
	if err != nil {
		t.Fatal(err)
	}
	sp := sps[0]
	count := 0
	for _, a := range sp.All {
		if a.Owner == "Bool" {
			count++
		}
	}
	if count != 6 {
		t.Errorf("Bool axioms appear %d times, want 6", count)
	}
}

func TestCheckGroundExpr(t *testing.T) {
	env := speclib.BaseEnv()
	sp := env.MustGet("Queue")

	tm, err := env.ParseTerm("Queue", "front(add(new, 'x))")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Sort != "Item" {
		t.Errorf("sort = %s", tm.Sort)
	}
	// Free variables are rejected in ground terms.
	if _, err := env.ParseTerm("Queue", "front(q)"); err == nil {
		t.Error("free variable accepted in ground term")
	}
	// With explicit vars it works.
	tm2, err := env.ParseTermWithVars("Queue", "front(q)", map[string]sig.Sort{"q": "Queue"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tm2.Vars()) != 1 {
		t.Errorf("vars = %v", tm2.Vars())
	}
	_ = sp
}

func TestPrincipalSortOnlyWhenMentioned(t *testing.T) {
	// A spec that only defines ops over existing sorts gets no
	// spurious principal sort.
	env, err := load(t, `
spec Util
  uses Bool
  ops
    nand : Bool, Bool -> Bool
  vars a, b : Bool
  axioms
    nand(a, b) = not(and(a, b))
end`)
	if err != nil {
		t.Fatal(err)
	}
	sp := env.MustGet("Util")
	if sp.Sig.HasSort("Util") {
		t.Error("spurious principal sort added")
	}
	if _, ok := sp.PrincipalSort(); ok {
		t.Error("PrincipalSort reported")
	}
}

func TestVarApplication(t *testing.T) {
	buildErr(t, `
spec I
  uses Bool
  ops
    c : -> I
    f : I -> Bool
  vars x : I
  axioms
    f(x()) = true
end`, "cannot be applied")
}
