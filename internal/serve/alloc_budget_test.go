package serve_test

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"algspec/internal/serve"
)

// TestServeWarmAllocBudget is the allocation-regression gate for the
// HTTP warm path: an /v1/normalize cache hit must stay within the
// checked-in allocs/op budget in testdata/serve_alloc_budget. The warm
// path pools its JSON encode buffers and response structs, so what
// remains is mostly the request side (httptest plumbing, JSON decode of
// the request body) plus the cache probe. The budget carries headroom
// over the measured steady state; tripping this gate means a handler
// change started allocating per hit again. Tighten the budget when the
// steady state improves; loosening it is the regression this test
// exists to catch.
func TestServeWarmAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark-backed gate skipped in -short mode")
	}
	raw, err := os.ReadFile("testdata/serve_alloc_budget")
	if err != nil {
		t.Fatalf("read alloc budget: %v", err)
	}
	budget, err := strconv.Atoi(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("parse alloc budget %q: %v", raw, err)
	}

	res := testing.Benchmark(func(b *testing.B) {
		benchNormalize(b, serve.DefaultCacheSize, true)
	})
	if got := res.AllocsPerOp(); got > int64(budget) {
		t.Errorf("serve warm path allocates %d allocs/op, budget is %d (testdata/serve_alloc_budget)",
			got, budget)
	} else {
		t.Logf("serve warm path: %d allocs/op within budget %d", got, budget)
	}
}
