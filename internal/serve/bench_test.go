package serve_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"algspec/internal/serve"
)

// e1QueueOps64Term spells the E1 benchmark workload (bench_test.go's
// queueWorkload) as one ground term: 64 interleaved add/remove
// operations over the Queue spec, observed through front. This is the
// term the acceptance criterion measures cold vs warm.
func e1QueueOps64Term() string {
	items := []string{"a", "b", "c", "d"}
	state := "new"
	size := 0
	for i := 0; i < 64; i++ {
		if size > 0 && i%3 == 0 {
			state = "remove(" + state + ")"
			size--
		} else {
			state = fmt.Sprintf("add(%s, '%s)", state, items[i%len(items)])
			size++
		}
	}
	return "front(" + state + ")"
}

func benchNormalize(b *testing.B, cacheSize int, prime bool) {
	srv, err := serve.New(serve.Config{Workers: 2, CacheSize: cacheSize})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	body := `{"spec":"Queue","term":` + jsonString(e1QueueOps64Term()) + `}`
	request := func() string {
		req := httptest.NewRequest("POST", "/v1/normalize", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		return rec.Body.String()
	}
	if prime {
		if resp := request(); !strings.Contains(resp, `"cached": false`) {
			b.Fatalf("priming request was already cached: %s", resp)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		request()
	}
}

// BenchmarkServeNormalizeCold measures the full request path with the
// normal-form cache disabled: JSON decode, parse, canon, pool round
// trip, full normalization, JSON encode.
func BenchmarkServeNormalizeCold(b *testing.B) {
	benchNormalize(b, -1, false)
}

// BenchmarkServeNormalizeWarm measures the same request answered from
// the shared cache (one priming request, then all hits).
func BenchmarkServeNormalizeWarm(b *testing.B) {
	benchNormalize(b, serve.DefaultCacheSize, true)
}
