package serve

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"unsafe"

	"algspec/internal/faultinject"
	"algspec/internal/term"
)

// This file holds the server's two shared caches, both bounded sharded
// LRUs:
//
//   - the normal-form cache, keyed on interned-term pointers: every
//     request's input term is canonicalized into its spec's shared
//     interner before the lookup, so structurally equal terms — however
//     they were spelled — land on the same pointer, and pointers from
//     different specs can never collide (each spec's interner hands out
//     distinct allocations);
//   - the parse cache, keyed on (spec, term text), short-circuiting the
//     lexer/parser/sort-checker for hot request strings straight to the
//     canonical pointer.
//
// Entries are immutable values, which is what makes one cache safely
// shared by every pool worker: readers and writers only ever exchange
// values under the shard lock. Sharding exists because both caches are
// on the warm path of every request: a single mutex would serialize
// exactly the traffic the caches are meant to accelerate.
const cacheShards = 16

// lruCache is a sharded LRU from comparable keys to immutable values.
// A nil *lruCache is a valid always-miss cache whose methods are
// no-ops, which is how `-cache 0` and the cold benchmark run.
type lruCache[K comparable, V any] struct {
	shards [cacheShards]lruShard[K, V]
	hash   func(K) uintptr
	hits   atomic.Int64
	misses atomic.Int64
	// evict is this cache's poison-eviction fault point: when it fires,
	// Put drops the new entry (and removes any entry already cached
	// under the key) instead of storing, forcing recomputation. One
	// atomic load while disarmed.
	evict *faultinject.Point
}

type lruShard[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	items map[K]*list.Element
	order *list.List // front = most recently used
}

type lruNode[K comparable, V any] struct {
	key K
	val V
}

// newLRU builds a cache holding about capacity entries in total
// (rounded up to a multiple of the shard count); capacity <= 0 returns
// the nil always-miss cache.
func newLRU[K comparable, V any](capacity int, hash func(K) uintptr) *lruCache[K, V] {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + cacheShards - 1) / cacheShards
	c := &lruCache[K, V]{hash: hash}
	for i := range c.shards {
		c.shards[i] = lruShard[K, V]{
			cap:   per,
			items: make(map[K]*list.Element, per),
			order: list.New(),
		}
	}
	return c
}

func (c *lruCache[K, V]) shard(key K) *lruShard[K, V] {
	x := c.hash(key)
	x ^= x >> 12 // fold high bits in before indexing
	return &c.shards[(x>>4)%cacheShards]
}

// Get looks the key up, promoting it to most-recently-used on a hit.
// Every Get counts exactly one hit or miss; /metrics reconciles these
// against request counts, so the accounting must never drop an update.
func (c *lruCache[K, V]) Get(key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		c.misses.Add(1)
		return zero, false
	}
	sh.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*lruNode[K, V]).val, true
}

// Put inserts (or refreshes) an entry, evicting the least-recently-used
// entry of the key's shard when the shard is full. Concurrent Puts of
// the same key are idempotent: both writers derived the same value from
// a deterministic computation.
func (c *lruCache[K, V]) Put(key K, val V) {
	if c == nil {
		return
	}
	sh := c.shard(key)
	if c.evict != nil {
		if _, ok := c.evict.Fire(); ok {
			// Poison-eviction fault: lose this write, and take any cached
			// entry for the key with it. Correctness must survive — the
			// cache is an accelerator, never a source of truth.
			sh.mu.Lock()
			if el, found := sh.items[key]; found {
				sh.order.Remove(el)
				delete(sh.items, key)
			}
			sh.mu.Unlock()
			return
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		el.Value.(*lruNode[K, V]).val = val
		sh.order.MoveToFront(el)
		return
	}
	if sh.order.Len() >= sh.cap {
		oldest := sh.order.Back()
		if oldest != nil {
			sh.order.Remove(oldest)
			delete(sh.items, oldest.Value.(*lruNode[K, V]).key)
		}
	}
	sh.items[key] = sh.order.PushFront(&lruNode[K, V]{key: key, val: val})
}

// Len reports the number of live entries across all shards.
func (c *lruCache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// Counters returns the cumulative hit and miss counts.
func (c *lruCache[K, V]) Counters() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// cacheEntry is one memoized normalization. Steps records the cold
// run's reduction count and is echoed on warm hits, so a client can
// still see what the term costs. strat records the strategy that
// computed the entry; on a shared (certified) cache a hit may serve a
// different strategy than the one that paid for the cold run, which the
// cross-strategy metric counts.
type cacheEntry struct {
	nf    *term.Term
	steps int
	strat uint8
}

// nfKey keys the normal-form cache. The term pointer is canonical
// (interned per version env). strat partitions the key space: certified
// specs collapse every strategy onto stratShared — their normal forms
// are strategy-independent by theorem, so innermost and outermost
// requests share entries — while uncertified specs keep one partition
// per strategy, preserving the old per-strategy soundness.
type nfKey struct {
	t     *term.Term
	strat uint8
}

const (
	// stratShared keys certified specs (any strategy) and uncertified
	// innermost requests — the pre-certificate key space, which is what
	// lets persisted WAL entries reload compatibly.
	stratShared uint8 = 0
	// stratOutermost keys uncertified outermost requests only.
	stratOutermost uint8 = 1
)

// nfCache is the normal-form cache: canonical input term (plus strategy
// partition) -> result.
type nfCache = lruCache[nfKey, cacheEntry]

func newNFCache(capacity int) *nfCache {
	c := newLRU[nfKey, cacheEntry](capacity, func(k nfKey) uintptr {
		// Low pointer bits are alignment zeros; the shard fold discards
		// them. The strategy bit lands above them so the two partitions
		// of one term do not collide on a shard slot.
		return uintptr(unsafe.Pointer(k.t)) ^ (uintptr(k.strat) << 4)
	})
	if c != nil {
		c.evict = fpNFEvict
	}
	return c
}

// parseCache maps (spec, term text) — joined with a NUL, which the
// surface syntax cannot contain — to the canonical parsed term.
type parseCache = lruCache[string, *term.Term]

var parseSeed = maphash.MakeSeed()

func newParseCache(capacity int) *parseCache {
	c := newLRU[string, *term.Term](capacity, func(k string) uintptr {
		return uintptr(maphash.String(parseSeed, k))
	})
	if c != nil {
		c.evict = fpParseEvict
	}
	return c
}
