package serve

import (
	"fmt"
	"sync"
	"testing"

	"algspec/internal/term"
)

func atoms(n int) []*term.Term {
	in := term.NewInterner()
	out := make([]*term.Term, n)
	for i := range out {
		out[i] = in.Atom(fmt.Sprintf("a%d", i), "Item")
	}
	return out
}

// nk wraps a canonical term in the shared-partition cache key, the
// historic key space.
func nk(t *term.Term) nfKey { return nfKey{t: t, strat: stratShared} }

func TestCacheHitMissAndCounters(t *testing.T) {
	c := newNFCache(64)
	keys := atoms(3)
	if _, ok := c.Get(nk(keys[0])); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(nk(keys[0]), cacheEntry{nf: keys[1], steps: 7})
	got, ok := c.Get(nk(keys[0]))
	if !ok || got.nf != keys[1] || got.steps != 7 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := c.Get(nk(keys[2])); ok {
		t.Fatal("hit on absent key")
	}
	// The two strategy partitions of one term are distinct keys.
	if _, ok := c.Get(nfKey{t: keys[0], strat: stratOutermost}); ok {
		t.Fatal("outermost partition hit a shared-partition entry")
	}
	hits, misses := c.Counters()
	if hits != 1 || misses != 3 {
		t.Fatalf("counters = %d/%d, want 1 hit / 3 misses", hits, misses)
	}
}

// Eviction is per shard and LRU order: with single-entry shards, a
// second key landing on the same shard evicts the first; a recently
// Got key survives over a stale one.
func TestCacheEvictsLRUWithinShard(t *testing.T) {
	// Capacity cacheShards means one slot per shard.
	c := newNFCache(cacheShards)
	val := cacheEntry{steps: 1}

	// Find two keys that share a shard.
	keys := atoms(256)
	shardOf := func(k *term.Term) *lruShard[nfKey, cacheEntry] { return c.shard(nk(k)) }
	var a, b *term.Term
outer:
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if shardOf(keys[i]) == shardOf(keys[j]) {
				a, b = keys[i], keys[j]
				break outer
			}
		}
	}
	if a == nil {
		t.Fatal("no two of 256 keys share a shard?")
	}
	c.Put(nk(a), val)
	c.Put(nk(b), val) // shard is full: a is the LRU entry and must go
	if _, ok := c.Get(nk(a)); ok {
		t.Error("evicted entry still present")
	}
	if _, ok := c.Get(nk(b)); !ok {
		t.Error("fresh entry missing")
	}
}

func TestCacheLRUPromotionOnGet(t *testing.T) {
	c := newNFCache(cacheShards * 2) // two slots per shard
	keys := atoms(512)
	sh := c.shard(nk(keys[0]))
	same := []*term.Term{keys[0]}
	for _, k := range keys[1:] {
		if c.shard(nk(k)) == sh {
			same = append(same, k)
			if len(same) == 3 {
				break
			}
		}
	}
	if len(same) < 3 {
		t.Fatal("could not find three keys on one shard")
	}
	val := cacheEntry{steps: 1}
	c.Put(nk(same[0]), val)
	c.Put(nk(same[1]), val)
	c.Get(nk(same[0]))      // promote the older entry
	c.Put(nk(same[2]), val) // evicts same[1], the true LRU
	if _, ok := c.Get(nk(same[0])); !ok {
		t.Error("promoted entry was evicted")
	}
	if _, ok := c.Get(nk(same[1])); ok {
		t.Error("LRU entry survived eviction")
	}
}

// A nil cache (disabled) is safe and always misses without counting.
func TestCacheDisabled(t *testing.T) {
	var c *nfCache
	keys := atoms(1)
	if _, ok := c.Get(nk(keys[0])); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(nk(keys[0]), cacheEntry{})
	if n := c.Len(); n != 0 {
		t.Fatalf("Len = %d", n)
	}
	if h, m := c.Counters(); h != 0 || m != 0 {
		t.Fatalf("counters = %d/%d", h, m)
	}
	if newNFCache(0) != nil || newNFCache(-1) != nil {
		t.Fatal("non-positive capacity must disable the cache")
	}
}

// Concurrent mixed Get/Put on overlapping keys: the race detector
// checks the locking; the invariant checked here is that the cache
// never exceeds its total capacity and counters add up.
func TestCacheConcurrent(t *testing.T) {
	const capacity = 64
	c := newNFCache(capacity)
	keys := atoms(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := nk(keys[(i*7+g*13)%len(keys)])
				if _, ok := c.Get(k); !ok {
					c.Put(k, cacheEntry{nf: k.t, steps: i})
				}
			}
		}(g)
	}
	wg.Wait()
	// Rounded-up per-shard caps allow at most one extra entry per shard.
	if n := c.Len(); n > capacity+cacheShards {
		t.Errorf("cache holds %d entries, cap %d", n, capacity)
	}
	hits, misses := c.Counters()
	if hits+misses != 8*500 {
		t.Errorf("hits %d + misses %d = %d, want %d", hits, misses, hits+misses, 8*500)
	}
}
