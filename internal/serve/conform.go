package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"algspec/internal/conform"
	"algspec/internal/faultinject"
	"algspec/internal/registry"
	"algspec/internal/rewrite"
	"algspec/internal/sig"
	"algspec/internal/term"
)

// Conformance as a service (DESIGN §14): POST /v1/conform drives a
// remote implementation through an axiom-oracle session. The server
// plans ground probe programs from the pinned spec version's axioms,
// the client evaluates them on its implementation and reports
// observations, and the server judges every observation against the
// engine's normal form — shrinking any disagreement to a minimal
// counterexample through further candidate rounds. Sessions are
// in-memory, bounded, TTL-reaped, and replay-idempotent per round so a
// client may retry a faulted observe verbatim.

const (
	// maxConformSessions bounds live sessions; opens beyond it answer 429.
	maxConformSessions = 512
	// conformSessionTTL reaps sessions abandoned by their client.
	conformSessionTTL = 5 * time.Minute
)

// conformSession is one live (or just-finished, replayable) session.
type conformSession struct {
	mu      sync.Mutex
	sess    *conform.Session
	spec    string
	version string
	// expires is the TTL deadline in unix nanos. purge reads it under
	// cs.mu while observes refresh it under the per-session c.mu, so it
	// is atomic rather than guarded by either lock.
	expires atomic.Int64

	// lastRound/lastResp replay the previous answer when a client retries
	// a round it already completed (its response was lost to a fault).
	lastRound int
	lastResp  *conform.Response
}

// conformState is the endpoint's shared state and its adt_conform_*
// counters.
type conformState struct {
	mu       sync.Mutex
	sessions map[string]*conformSession
	nextID   atomic.Int64

	opened   atomic.Int64
	expired  atomic.Int64
	rejected atomic.Int64
	programs atomic.Int64
	pass     atomic.Int64
	fail     atomic.Int64
}

func newConformState() *conformState {
	return &conformState{sessions: make(map[string]*conformSession)}
}

// purge drops expired sessions; callers hold cs.mu.
func (cs *conformState) purge(now time.Time) {
	for id, c := range cs.sessions {
		if now.UnixNano() > c.expires.Load() {
			delete(cs.sessions, id)
			cs.expired.Add(1)
		}
	}
}

// active is the live-session gauge.
func (cs *conformState) active() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.purge(time.Now())
	return len(cs.sessions)
}

// conformNormalizer builds the per-request engine seam the planner and
// judge evaluate through: a fresh fork carrying this request's fuel,
// stop flag and (when armed) fault hook — the same discipline as
// handleNormalize, minus the worker pool (conform rounds normalize many
// small probes; queueing each would cost more than it bounds).
func (s *Server) conformNormalizer(ver *registry.Version, spec string, stop *atomic.Bool) (conform.Normalizer, error) {
	base, err := ver.Env.System(spec)
	if err != nil {
		return nil, err
	}
	opts := []rewrite.Option{rewrite.WithMaxSteps(s.cfg.Fuel), rewrite.WithStop(stop)}
	if faultinject.Armed() {
		opts = append(opts, rewrite.WithFault(engineFaultHook))
	}
	f := base.Fork(opts...)
	intern := base.Interner()
	return func(t *term.Term) (*term.Term, error) {
		return f.Normalize(intern.Canon(t))
	}, nil
}

func (s *Server) handleConform(w http.ResponseWriter, r *http.Request) {
	var req conform.Request
	if !readJSON(w, r, &req) {
		return
	}
	switch req.Action {
	case "open":
		s.conformOpen(w, r, &req)
	case "observe":
		s.conformObserve(w, r, &req)
	case "close":
		s.conformClose(w, &req)
	default:
		writeJSON(w, http.StatusBadRequest,
			ErrorResponse{Error: fmt.Sprintf("unknown action %q (want open, observe or close)", req.Action)})
	}
}

func (s *Server) conformOpen(w http.ResponseWriter, r *http.Request, req *conform.Request) {
	ver, ok := s.reg.Resolve(req.Version)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown version %q", req.Version)})
		return
	}
	sp, ok := ver.Env.Get(req.Spec)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown specification %q", req.Spec)})
		return
	}
	var sorts []sig.Sort
	for _, so := range req.ObserveSorts {
		if !sp.Sig.HasSort(sig.Sort(so)) {
			writeJSON(w, http.StatusBadRequest,
				ErrorResponse{Error: fmt.Sprintf("observe_sorts: %s has no sort %q", sp.Name, so)})
			return
		}
		sorts = append(sorts, sig.Sort(so))
	}

	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	var stop atomic.Bool
	go func() {
		<-ctx.Done()
		stop.Store(true)
	}()
	norm, err := s.conformNormalizer(ver, sp.Name, &stop)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	plan, err := conform.NewPlan(ver.Env, sp, norm, conform.PlanConfig{
		N: req.N, Depth: req.Depth, Seed: req.Seed, ObserveSorts: sorts,
	})
	if err != nil {
		s.writeConformEngineError(w, err)
		return
	}

	cs := s.conf
	cs.mu.Lock()
	cs.purge(time.Now())
	if len(cs.sessions) >= maxConformSessions {
		cs.mu.Unlock()
		cs.rejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests,
			ErrorResponse{Error: fmt.Sprintf("conformance session limit (%d) reached; retry later", maxConformSessions)})
		return
	}
	id := fmt.Sprintf("cs-%d", cs.nextID.Add(1))
	c := &conformSession{
		sess:    conform.NewSession(plan),
		spec:    sp.Name,
		version: ver.ID,
	}
	c.expires.Store(time.Now().Add(conformSessionTTL).UnixNano())
	cs.sessions[id] = c
	cs.mu.Unlock()
	cs.opened.Add(1)
	cs.programs.Add(int64(len(plan.Programs)))

	resp := &conform.Response{
		Session: id, Spec: sp.Name, Version: ver.ID,
		Round: c.sess.Round(), Skipped: plan.Skipped, Capped: plan.Capped,
	}
	for _, p := range plan.Programs {
		resp.Programs = append(resp.Programs, conform.Msg(p))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) conformObserve(w http.ResponseWriter, r *http.Request, req *conform.Request) {
	c, ok := s.lookupConform(req.Session)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			ErrorResponse{Error: fmt.Sprintf("unknown or expired session %q", req.Session)})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Round == c.lastRound && c.lastResp != nil {
		// Idempotent retry of a round already judged: replay the answer.
		writeJSON(w, http.StatusOK, c.lastResp)
		return
	}
	if req.Round != c.sess.Round() || c.sess.Done() {
		writeJSON(w, http.StatusConflict,
			ErrorResponse{Error: fmt.Sprintf("session %s expects round %d observations (got round %d)", req.Session, c.sess.Round(), req.Round)})
		return
	}

	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	var stop atomic.Bool
	go func() {
		<-ctx.Done()
		stop.Store(true)
	}()
	ver, ok := s.reg.Resolve(c.version)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "session version vanished from the registry"})
		return
	}
	norm, err := s.conformNormalizer(ver, c.spec, &stop)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}

	done, next, err := c.sess.Observe(req.Observations, norm)
	if err != nil {
		// The session state is untouched on any Observe error: a protocol
		// slip is the client's to fix, an engine fault is retryable with
		// the same round verbatim.
		var pe *conform.ProtocolError
		if errors.As(err, &pe) {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: pe.Error()})
			return
		}
		s.writeConformEngineError(w, err)
		return
	}

	resp := &conform.Response{Session: req.Session, Spec: c.spec, Version: c.version}
	if done {
		v := c.sess.Verdict()
		resp.Done = true
		resp.Pass = v.Pass
		resp.Checked = v.Checked
		resp.FailureCount = v.FailureCount
		resp.ShrinkSteps = v.ShrinkSteps
		for i := range v.Failures {
			resp.Failures = append(resp.Failures, *conform.FailureMsgOf(&v.Failures[i]))
		}
		resp.Counterexample = conform.FailureMsgOf(v.Counterexample)
		if v.Pass {
			s.conf.pass.Add(1)
		} else {
			s.conf.fail.Add(1)
		}
	} else {
		resp.Round = c.sess.Round()
		for _, p := range next {
			resp.Programs = append(resp.Programs, conform.Msg(p))
		}
		s.conf.programs.Add(int64(len(next)))
	}
	c.lastRound = req.Round
	c.lastResp = resp
	c.expires.Store(time.Now().Add(conformSessionTTL).UnixNano())
	writeJSON(w, http.StatusOK, resp)
}

// conformClose is idempotent: closing an unknown (or already-closed)
// session succeeds, so a client retrying a lost close never errors out.
func (s *Server) conformClose(w http.ResponseWriter, req *conform.Request) {
	cs := s.conf
	cs.mu.Lock()
	delete(cs.sessions, req.Session)
	cs.mu.Unlock()
	writeJSON(w, http.StatusOK, &conform.Response{Session: req.Session, Closed: true})
}

func (s *Server) lookupConform(id string) (*conformSession, bool) {
	cs := s.conf
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.purge(time.Now())
	c, ok := cs.sessions[id]
	return c, ok
}

// writeConformEngineError maps engine failures during planning or
// judging to the endpoint's fault contract: fuel exhaustion is 422,
// deadline/cancellation is 504 — the same codes /v1/normalize answers,
// so clients and the loadgen books treat all engine faults uniformly.
func (s *Server) writeConformEngineError(w http.ResponseWriter, err error) {
	var fuelErr *rewrite.ErrFuel
	switch {
	case errors.As(err, &fuelErr):
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error(), Steps: fuelErr.Steps})
	case errors.Is(err, rewrite.ErrCanceled):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "conformance round exceeded the request deadline"})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
	}
}
