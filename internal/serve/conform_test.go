package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"algspec/internal/conform"
	"algspec/internal/core"
	"algspec/internal/refimpl"
	"algspec/internal/serve"
	"algspec/internal/sig"
	"algspec/internal/speclib"
)

// shippedSpecs reads the specs/ directory the conform e2e battery runs
// over (Counter, Graph, PQueue — the specs with bundled references).
func shippedSpecs(t testing.TB) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec"))
	if err != nil || len(files) == 0 {
		t.Fatalf("globbing shipped specs: %v (%d files)", err, len(files))
	}
	srcs := make([]string, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = string(data)
	}
	return srcs
}

// clientEnv mirrors the server's environment on the client side of the
// wire, the way a real implementer would hold their own copy of the
// spec.
func clientEnv(t testing.TB) *core.Env {
	t.Helper()
	env := core.NewEnv()
	env.MustLoad(speclib.Sources...)
	env.MustLoad(shippedSpecs(t)...)
	return env
}

// poster sends conform requests over real HTTP and counts the
// exchanges, so tests can reconcile them against the server's books.
func poster(t testing.TB, ts *httptest.Server, count *int) conform.Poster {
	return func(req *conform.Request) (*conform.Response, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		*count++
		hr, err := http.Post(ts.URL+"/v1/conform", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer hr.Body.Close()
		data, err := io.ReadAll(hr.Body)
		if err != nil {
			return nil, err
		}
		if hr.StatusCode/100 != 2 {
			return nil, &conform.HTTPError{Status: hr.StatusCode, Body: strings.TrimSpace(string(data))}
		}
		var resp conform.Response
		if err := json.Unmarshal(data, &resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}
}

// metric scrapes one un-labeled metric value from a /metrics page.
func metric(t testing.TB, page, name string) int {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(page)
	if m == nil {
		t.Fatalf("metric %s not found in page:\n%s", name, page)
	}
	v, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// labeledMetric scrapes adt_requests_total{endpoint=...,code=...}.
func labeledMetric(t testing.TB, page, name, labels string) int {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name+"{"+labels+"}") + ` (\d+)$`)
	m := re.FindStringSubmatch(page)
	if m == nil {
		return 0
	}
	v, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// obsFor declares Nat observable where the spec has the sort (Graph
// observes through Bool alone).
func obsFor(env *core.Env, spec string) []string {
	if env.MustGet(spec).Sig.HasSort(sig.Sort("Nat")) {
		return []string{"Nat"}
	}
	return nil
}

// TestConformE2EReferences drives every bundled reference through a
// full wire session: all must pass, and the adt_conform_* books must
// reconcile exactly with what the client saw.
func TestConformE2EReferences(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2}, shippedSpecs(t)...)
	env := clientEnv(t)
	posts := 0
	sessions := 0
	for name, build := range refimpl.Builders() {
		sp := env.MustGet(name)
		v, err := conform.Drive(poster(t, ts, &posts), &conform.Request{
			Spec: name, ObserveSorts: obsFor(env, name),
		}, conform.NewModelClient(sp, build(sp)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sessions++
		if !v.Pass {
			t.Errorf("%s: reference failed conformance: %d of %d disagree (counterexample %+v)",
				name, v.FailureCount, v.Checked, v.Counterexample)
		}
		if v.Checked == 0 {
			t.Errorf("%s: verdict checked zero programs", name)
		}
	}

	_, page := do(t, ts, "GET", "/metrics", "")
	if got := metric(t, page, "adt_conform_sessions_opened_total"); got != sessions {
		t.Errorf("opened = %d, want %d", got, sessions)
	}
	if got := metric(t, page, "adt_conform_pass_total"); got != sessions {
		t.Errorf("pass = %d, want %d", got, sessions)
	}
	if got := metric(t, page, "adt_conform_fail_total"); got != 0 {
		t.Errorf("fail = %d, want 0", got)
	}
	if got := metric(t, page, "adt_conform_sessions_active"); got != 0 {
		t.Errorf("active = %d, want 0 (all sessions closed)", got)
	}
	if got := metric(t, page, "adt_conform_programs_total"); got == 0 {
		t.Error("programs = 0, want > 0")
	}
	// Every wire exchange this test made (including the /metrics-invisible
	// opens and closes) is booked on the request counter, and nothing else
	// touched the endpoint: the books must match the client's count.
	if got := labeledMetric(t, page, "adt_requests_total", `endpoint="conform",code="200"`); got != posts {
		t.Errorf("adt_requests_total conform/200 = %d, want %d (client-side count)", got, posts)
	}
}

// TestConformE2EMutants requires the oracle endpoint to kill every
// single-operation mutant of every reference, with a minimal
// counterexample, and books one failed verdict per mutant.
func TestConformE2EMutants(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2}, shippedSpecs(t)...)
	env := clientEnv(t)
	posts := 0
	mutants := 0
	for name := range refimpl.Builders() {
		sp := env.MustGet(name)
		for _, m := range refimpl.Mutants(sp) {
			mutants++
			v, err := conform.Drive(poster(t, ts, &posts), &conform.Request{
				Spec: name, ObserveSorts: obsFor(env, name),
			}, conform.NewModelClient(sp, m.Impl))
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m.Op, err)
			}
			if v.Pass {
				t.Errorf("%s: mutant %s survived the conformance oracle", name, m.Op)
				continue
			}
			ce := v.Counterexample
			if ce == nil {
				t.Errorf("%s/%s: failing verdict has no counterexample", name, m.Op)
				continue
			}
			if !strings.Contains(ce.Program, m.Op) {
				t.Errorf("%s/%s: counterexample %q does not mention the mutated operation", name, m.Op, ce.Program)
			}
		}
	}
	if mutants < 12 {
		t.Fatalf("only %d mutants driven; expected at least 12", mutants)
	}

	_, page := do(t, ts, "GET", "/metrics", "")
	if got := metric(t, page, "adt_conform_fail_total"); got != mutants {
		t.Errorf("fail = %d, want %d (one per mutant)", got, mutants)
	}
	if got := metric(t, page, "adt_conform_pass_total"); got != 0 {
		t.Errorf("pass = %d, want 0", got)
	}
	if got := metric(t, page, "adt_conform_sessions_active"); got != 0 {
		t.Errorf("active = %d, want 0", got)
	}
}

// TestConformProtocol pins the wire contract's edges: unknown spec and
// session, bad observe sorts, round skew, replay idempotency and
// idempotent close.
func TestConformProtocol(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2}, shippedSpecs(t)...)

	post := func(body string) (int, string) {
		return do(t, ts, "POST", "/v1/conform", body)
	}

	if code, _ := post(`{"action":"open","spec":"NoSuchSpec"}`); code != http.StatusNotFound {
		t.Errorf("open unknown spec = %d, want 404", code)
	}
	if code, _ := post(`{"action":"open","spec":"Queue","observe_sorts":["NoSuchSort"]}`); code != http.StatusBadRequest {
		t.Errorf("open bad observe sort = %d, want 400", code)
	}
	if code, _ := post(`{"action":"observe","session":"cs-999","round":1}`); code != http.StatusNotFound {
		t.Errorf("observe unknown session = %d, want 404", code)
	}
	if code, _ := post(`{"action":"fondle"}`); code != http.StatusBadRequest {
		t.Errorf("unknown action = %d, want 400", code)
	}

	// Open a real session and walk its protocol edges.
	code, body := post(`{"action":"open","spec":"Queue"}`)
	if code != http.StatusOK {
		t.Fatalf("open = %d: %s", code, body)
	}
	var opened conform.Response
	if err := json.Unmarshal([]byte(body), &opened); err != nil {
		t.Fatal(err)
	}
	if opened.Session == "" || len(opened.Programs) == 0 {
		t.Fatalf("open response lacks session or programs: %s", body)
	}
	if opened.Version == "" {
		t.Error("open response is not pinned to a registry version")
	}

	// Answer the first round through the engine client (the observations
	// must be genuine, or the verdict rounds would diverge).
	env := clientEnv(t)
	eval, err := conform.NewEngineClient(env, "Queue")
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]conform.Observation, 0, len(opened.Programs))
	for _, p := range opened.Programs {
		o, err := eval.Observe(p)
		if err != nil {
			t.Fatal(err)
		}
		o.ID = p.ID
		obs = append(obs, o)
	}
	req := conform.Request{Action: "observe", Session: opened.Session, Round: opened.Round, Observations: obs}
	reqBody, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}

	// Round skew answers 409 and leaves the session untouched.
	skew := req
	skew.Round = opened.Round + 7
	skewBody, _ := json.Marshal(&skew)
	if code, _ := post(string(skewBody)); code != http.StatusConflict {
		t.Errorf("skewed round = %d, want 409", code)
	}

	code, first := post(string(reqBody))
	if code != http.StatusOK {
		t.Fatalf("observe = %d: %s", code, first)
	}
	// A verbatim retry of the same round (a client retrying a faulted
	// exchange) replays the identical answer.
	code, replay := post(string(reqBody))
	if code != http.StatusOK || replay != first {
		t.Errorf("replayed round: code %d, body equal %v", code, replay == first)
	}

	// Close is idempotent, even for sessions that never existed.
	for _, sess := range []string{opened.Session, opened.Session, "cs-424242"} {
		code, body := post(`{"action":"close","session":"` + sess + `"}`)
		if code != http.StatusOK || !strings.Contains(body, `"closed": true`) {
			t.Errorf("close %s = %d: %s", sess, code, body)
		}
	}

	_, page := do(t, ts, "GET", "/metrics", "")
	if got := metric(t, page, "adt_conform_sessions_active"); got != 0 {
		t.Errorf("active = %d, want 0 after close", got)
	}
}
