package serve

import (
	"fmt"

	"algspec/internal/faultinject"
	"algspec/internal/rewrite"
)

// The server's fault points, registered at compile time (DESIGN §11).
// Each names one seam where `adt load -faults` and the fault tests can
// deterministically break the service:
//
//   - serve.handler.delay  adds Rule.Delay of latency inside the
//     instrumented window of every API request (it shows up in the
//     latency histogram, exactly like a real stall would);
//   - serve.pool.delay     stalls a pool worker for Rule.Delay before
//     it starts a normalization (queue pressure without queue growth);
//   - serve.pool.saturate  makes submit behave as a queue whose slot
//     never frees within the deadline (the handler answers 504);
//   - serve.cache.nf.evict and serve.cache.parse.evict poison-evict on
//     Put: the computed entry is dropped — and any entry already cached
//     under the key evicted — so later requests recompute (correctness
//     must not depend on the cache retaining anything);
//   - rewrite.fuel and rewrite.cancel are threaded into the engine via
//     rewrite.WithFault and force an ErrFuel (422) or ErrCanceled (504)
//     mid-normalization, at the exact cadence of the fuel accounting.
var (
	fpHandlerDelay = faultinject.Register("serve.handler.delay")
	fpPoolDelay    = faultinject.Register("serve.pool.delay")
	fpPoolSaturate = faultinject.Register("serve.pool.saturate")
	fpNFEvict      = faultinject.Register("serve.cache.nf.evict")
	fpParseEvict   = faultinject.Register("serve.cache.parse.evict")
	fpEngineFuel   = faultinject.Register("rewrite.fuel")
	fpEngineCancel = faultinject.Register("rewrite.cancel")
)

// engineFaultHook is the rewrite.WithFault hook handlers install on a
// request's fork while the registry is armed. The engine completes the
// bare *ErrFuel with real step counts; ErrCanceled is wrapped the same
// way a deadline-raised stop flag surfaces it.
func engineFaultHook() error {
	if _, ok := fpEngineFuel.Fire(); ok {
		return &rewrite.ErrFuel{}
	}
	if _, ok := fpEngineCancel.Fire(); ok {
		return fmt.Errorf("%w (injected fault)", rewrite.ErrCanceled)
	}
	return nil
}
