package serve_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"algspec/internal/faultinject"
	"algspec/internal/serve"
)

// arm arms the given plan for the duration of the test. The registry is
// process-global, so fault tests must not run in parallel with each
// other or with any other serve test.
func arm(t *testing.T, plan faultinject.Plan) {
	t.Helper()
	if err := faultinject.Arm(plan); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disarm)
}

// TestFaultSaturation drives the pool-saturation point: with Every=1
// every cache-missing normalize is bounced as 504, and disarming
// restores service without a restart.
func TestFaultSaturation(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})
	arm(t, faultinject.Plan{"serve.pool.saturate": {Every: 1}})

	code, body := do(t, ts, "POST", "/v1/normalize", `{"spec":"Queue","term":"front(add(new, 'sat1))"}`)
	if code != http.StatusGatewayTimeout || !strings.Contains(body, "before a worker was free") {
		t.Fatalf("saturated normalize = %d: %s", code, body)
	}
	faultinject.Disarm()
	code, _ = do(t, ts, "POST", "/v1/normalize", `{"spec":"Queue","term":"front(add(new, 'sat2))"}`)
	if code != http.StatusOK {
		t.Fatalf("normalize after disarm = %d", code)
	}
}

// TestFaultEngineErrors injects the two engine-level faults and checks
// they surface exactly like organic fuel exhaustion and cancellation.
func TestFaultEngineErrors(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})

	arm(t, faultinject.Plan{"rewrite.fuel": {Every: 1}})
	code, body := do(t, ts, "POST", "/v1/normalize", `{"spec":"Queue","term":"front(add(new, 'fuel))"}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("injected fuel fault = %d: %s", code, body)
	}

	arm(t, faultinject.Plan{"rewrite.cancel": {Every: 1}})
	code, body = do(t, ts, "POST", "/v1/normalize", `{"spec":"Queue","term":"front(add(new, 'cxl))"}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("injected cancel fault = %d: %s", code, body)
	}
}

// TestFaultCacheEviction proves the poison-eviction point degrades the
// cache without ever corrupting results: with every Put dropped the
// same request stays a cache miss forever (correct answer, cached
// false), and after disarming the second hit caches normally.
func TestFaultCacheEviction(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})
	arm(t, faultinject.Plan{"serve.cache.nf.evict": {Every: 1}})

	req := `{"spec":"Queue","term":"front(add(add(new, 'ev), 'x))"}`
	for i := 0; i < 2; i++ {
		code, body := do(t, ts, "POST", "/v1/normalize", req)
		if code != http.StatusOK || !strings.Contains(body, `"'ev"`) {
			t.Fatalf("evicted normalize #%d = %d: %s", i, code, body)
		}
		if !strings.Contains(body, `"cached": false`) {
			t.Fatalf("request #%d hit a cache whose every Put is dropped: %s", i, body)
		}
	}
	faultinject.Disarm()
	do(t, ts, "POST", "/v1/normalize", req)
	code, body := do(t, ts, "POST", "/v1/normalize", req)
	if code != http.StatusOK || !strings.Contains(body, `"cached": true`) {
		t.Fatalf("cache did not recover after disarm: %d: %s", code, body)
	}
}

// TestFaultDelays arms both delay points and checks requests still
// succeed while the points actually fire.
func TestFaultDelays(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})
	arm(t, faultinject.Plan{
		"serve.handler.delay": {Every: 1, Delay: 2 * time.Millisecond},
		"serve.pool.delay":    {Every: 1, Delay: time.Millisecond},
	})
	start := time.Now()
	code, _ := do(t, ts, "POST", "/v1/normalize", `{"spec":"Queue","term":"front(add(new, 'dly))"}`)
	if code != http.StatusOK {
		t.Fatalf("delayed normalize = %d", code)
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("request took %s, expected at least the 3ms of injected delay", elapsed)
	}
	snap := faultinject.Snapshot()
	for _, name := range []string{"serve.handler.delay", "serve.pool.delay"} {
		if snap[name].Fires == 0 {
			t.Errorf("point %s never fired: %+v", name, snap[name])
		}
	}
}

// TestFaultPointsInertWhenDisarmed pins the zero-overhead contract's
// observable half: with nothing armed, fault points neither fire nor
// count, so a full request leaves every counter untouched.
func TestFaultPointsInertWhenDisarmed(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})
	// Arm-then-disarm resets the counters to a known zero.
	arm(t, faultinject.Plan{"serve.pool.saturate": {Every: 1}})
	faultinject.Disarm()

	for i := 0; i < 5; i++ {
		code, _ := do(t, ts, "POST", "/v1/normalize",
			fmt.Sprintf(`{"spec":"Queue","term":"front(add(new, 'inert%d))"}`, i))
		if code != http.StatusOK {
			t.Fatalf("normalize #%d = %d", i, code)
		}
	}
	for name, c := range faultinject.Snapshot() {
		if c.Hits != 0 || c.Fires != 0 {
			t.Errorf("disarmed point %s counted activity: %+v", name, c)
		}
	}
}
