package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"algspec/internal/complete"
	"algspec/internal/consist"
	"algspec/internal/core"
	"algspec/internal/faultinject"
	"algspec/internal/lang"
	"algspec/internal/rewrite"
	"algspec/internal/speclib"
)

// NormalizeRequest is the body of POST /v1/normalize.
type NormalizeRequest struct {
	// Spec names the specification to evaluate against.
	Spec string `json:"spec"`
	// Version pins a registry version ("sha256:<hex>" as returned by
	// POST /v1/specs). Empty means the base library. The response echoes
	// the resolved id whenever the request pinned one.
	Version string `json:"version,omitempty"`
	// Term is the ground term to normalize, in surface syntax.
	Term string `json:"term"`
	// Strategy selects the evaluation order: "innermost" (the default)
	// or "outermost". On a spec with a confluence certificate both
	// strategies share one normal-form cache partition — the certificate
	// is precisely the proof that their normal forms coincide; on an
	// uncertified spec each strategy keeps its own partition.
	Strategy string `json:"strategy,omitempty"`
	// Trace, when true, returns every rewrite step (and bypasses the
	// normal-form cache, which stores only results).
	Trace bool `json:"trace,omitempty"`
	// Fuel overrides the per-request reduction budget; it is capped by
	// the server's -fuel flag.
	Fuel int `json:"fuel,omitempty"`
	// TimeoutMs overrides the per-request deadline; it is capped by the
	// server's -timeout flag.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// NormalizeResponse is the 200 body of POST /v1/normalize.
type NormalizeResponse struct {
	Spec string `json:"spec"`
	// Version is the resolved registry version id, echoed only when the
	// request pinned one (base-library requests stay version-silent).
	Version string `json:"version,omitempty"`
	// Input echoes the parsed term in canonical spelling.
	Input      string `json:"input"`
	NormalForm string `json:"normal_form"`
	// Steps is the cold normalization's reduction count (echoed
	// unchanged on cache hits).
	Steps  int         `json:"steps"`
	Cached bool        `json:"cached"`
	Trace  []TraceStep `json:"trace,omitempty"`
}

// TraceStep is one rewrite in a traced normalization.
type TraceStep struct {
	Rule   string `json:"rule"`
	Before string `json:"before"`
	After  string `json:"after"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Line/Col locate a syntax error in the submitted term or source.
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Steps reports how much fuel a 422 burned before giving up.
	Steps int `json:"steps,omitempty"`
}

// CheckRequest is the body of POST /v1/check: specification source to
// run the four checkers on. The source is loaded on top of the server's
// library, so uploads may use library specs.
type CheckRequest struct {
	Source string `json:"source"`
	// Depth bounds the ground-term enumeration of the dynamic checks
	// (default 3, capped at 5 — the term count is exponential in it).
	Depth int `json:"depth,omitempty"`
	// Dynamic disables the two ground-term checkers when set to false.
	Dynamic *bool `json:"dynamic,omitempty"`
}

// CheckResponse reports the four checkers per uploaded spec.
type CheckResponse struct {
	OK    bool        `json:"ok"`
	Specs []SpecCheck `json:"specs"`
}

// SpecCheck is one spec's verdicts. The dynamic fields are absent when
// the request disabled the ground-term checks.
type SpecCheck struct {
	Name             string   `json:"name"`
	Complete         bool     `json:"complete"`
	Consistent       bool     `json:"consistent"`
	DynamicComplete  *bool    `json:"dynamic_complete,omitempty"`
	GroundConsistent *bool    `json:"ground_consistent,omitempty"`
	Problems         []string `json:"problems,omitempty"`
}

// SpecsResponse is the body of GET /v1/specs.
type SpecsResponse struct {
	Specs []speclib.Summary `json:"specs"`
	// Versions lists the registered uploads (the base library is implied
	// and omitted, so servers that never saw an upload keep the historic
	// response shape).
	Versions []VersionSummary `json:"versions,omitempty"`
}

// VersionSummary is one uploaded registry version in GET /v1/specs.
type VersionSummary struct {
	Version string   `json:"version"`
	Specs   []string `json:"specs"`
}

// SpecUploadRequest is the body of POST /v1/specs: specification source
// to register. The source is canonically formatted and content-
// addressed; registering the same content twice returns the same
// version id.
type SpecUploadRequest struct {
	Source string `json:"source"`
}

// SpecUploadResponse answers an upload: 201 when the version was
// created, 200 when the content was already registered.
type SpecUploadResponse struct {
	Version string   `json:"version"`
	Created bool     `json:"created"`
	Specs   []string `json:"specs"`
}

// encBufPool recycles the JSON encode buffers of writeJSON; together
// with normRespPool it keeps the warm normalize path from allocating a
// fresh output buffer per response (the serve_alloc_budget gate).
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf caps what goes back in the pool: one giant trace
// response must not pin its buffer forever.
const maxPooledBuf = 64 << 10

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// v is one of our own response structs; this cannot fail.
		panic(fmt.Sprintf("serve: marshaling %T: %v", v, err))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		encBufPool.Put(buf)
	}
}

// normRespPool recycles NormalizeResponse structs on the normalize
// path; writeJSON is synchronous, so the struct is free for reuse as
// soon as it returns.
var normRespPool = sync.Pool{New: func() any { return new(NormalizeResponse) }}

func putNormResp(resp *NormalizeResponse) {
	*resp = NormalizeResponse{}
	normRespPool.Put(resp)
}

// maxBodyBytes caps POST bodies: a term or spec source that needs more
// than a megabyte is not a request, it is an attack (or a bug), and
// reading it unbounded would let one client exhaust server memory.
const maxBodyBytes = 1 << 20

// readJSON enforces the POST contract and decodes the body into v:
// the Content-Type must be application/json (415 otherwise — a client
// sending a form or raw bytes should learn so before its payload is
// half-interpreted), and the body is capped at maxBodyBytes via
// http.MaxBytesReader (413 on overflow, and the connection is closed so
// the rest of the oversized body is never read). Returns false when it
// already wrote an error response.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
		writeJSON(w, http.StatusUnsupportedMediaType,
			ErrorResponse{Error: fmt.Sprintf("Content-Type must be application/json (got %q)", ct)})
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				ErrorResponse{Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid JSON body: " + err.Error()})
		return false
	}
	return true
}

// writeParseError answers 400, attaching the first syntax-error
// position when the error carries one.
func writeParseError(w http.ResponseWriter, err error) {
	resp := ErrorResponse{Error: err.Error()}
	var el lang.ErrorList
	var one *lang.Error
	switch {
	case errors.As(err, &el) && len(el) > 0:
		resp.Line, resp.Col = el[0].Line, el[0].Col
	case errors.As(err, &one):
		resp.Line, resp.Col = one.Line, one.Col
	}
	writeJSON(w, http.StatusBadRequest, resp)
}

func (s *Server) handleNormalize(w http.ResponseWriter, r *http.Request) {
	var req NormalizeRequest
	if !readJSON(w, r, &req) {
		return
	}
	ver, ok := s.reg.Resolve(req.Version)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown version %q", req.Version)})
		return
	}
	// The response pins the version only when the request did: base
	// requests keep the historic shape.
	echoVersion := ""
	if req.Version != "" {
		echoVersion = ver.ID
	}
	var strategy rewrite.Strategy
	switch req.Strategy {
	case "", "innermost":
		strategy = rewrite.Innermost
	case "outermost":
		strategy = rewrite.Outermost
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown strategy %q: want innermost or outermost", req.Strategy)})
		return
	}
	sp, ok := ver.Env.Get(req.Spec)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown specification %q", req.Spec)})
		return
	}
	// Cache-partition selection is the soundness seam: innermost
	// requests use the shared partition (the historic key space, where
	// WAL entries and corpus warmth live); outermost requests join it
	// only when the spec carries a confluence certificate — unique
	// normal forms make the cached result strategy-independent — and
	// otherwise get their own partition.
	reqStrat := stratShared
	if strategy == rewrite.Outermost {
		reqStrat = stratOutermost
	}
	keyStrat := reqStrat
	if reqStrat != stratShared && ver.Certified(sp.Name) {
		keyStrat = stratShared
	}
	base, err := ver.Env.System(sp.Name)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	// The parse cache short-circuits lexing/parsing/sort-checking for
	// hot request strings; on a miss the term is canonicalized into the
	// spec's shared interner, whose canonical pointer is the normal-form
	// cache key (forks resolve it in O(1)). Keys carry the version's
	// content address, so entries are never invalidated — a new upload
	// mints new keys and the old version's entries idle out of the LRU.
	parseKey := ver.ID + "\x00" + sp.Name + "\x00" + req.Term
	canon, ok := s.parsed.Get(parseKey)
	if !ok {
		t, err := ver.Env.ParseTerm(sp.Name, req.Term)
		if err != nil {
			writeParseError(w, err)
			return
		}
		canon = base.Interner().Canon(t)
		s.parsed.Put(parseKey, canon)
	}

	useCache := !req.Trace
	if useCache {
		if hit, ok := s.cache.Get(nfKey{t: canon, strat: keyStrat}); ok {
			if hit.strat != reqStrat {
				// A certified spec's entry computed under one strategy
				// just answered the other — the sharing the certificate
				// paid for.
				s.crossHits.Add(1)
			}
			resp := normRespPool.Get().(*NormalizeResponse)
			*resp = NormalizeResponse{
				Spec:       sp.Name,
				Version:    echoVersion,
				Input:      canon.String(),
				NormalForm: hit.nf.String(),
				Steps:      hit.steps,
				Cached:     true,
			}
			writeJSON(w, http.StatusOK, resp)
			putNormResp(resp)
			return
		}
	}

	fuel := s.cfg.Fuel
	if req.Fuel > 0 && req.Fuel < fuel {
		fuel = req.Fuel
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	// The stop flag is the bridge from context-land to the engine: a
	// watcher raises it when the deadline passes (or the client hangs
	// up), and the fork notices within ~1024 reductions.
	var stop atomic.Bool
	go func() {
		<-ctx.Done()
		stop.Store(true)
	}()

	var trace []TraceStep
	opts := []rewrite.Option{rewrite.WithMaxSteps(fuel), rewrite.WithStop(&stop)}
	if strategy != rewrite.Innermost {
		opts = append(opts, rewrite.WithStrategy(strategy))
	}
	if faultinject.Armed() {
		// The engine-level fault points ride the request's fork via the
		// same seam the deadline does; the Armed check keeps the normal
		// path free of the extra option (and its closure).
		opts = append(opts, rewrite.WithFault(engineFaultHook))
	}
	if req.Trace {
		opts = append(opts, rewrite.WithTrace(func(ts rewrite.TraceStep) {
			trace = append(trace, TraceStep{Rule: ts.Rule.Label, Before: ts.Before.String(), After: ts.After.String()})
		}))
	}
	job := &normJob{
		ctx:   ctx,
		sys:   base.Fork(opts...),
		t:     canon,
		stop:  &stop,
		reply: make(chan normResult, 1),
	}
	if err := s.pool.submit(job); err != nil {
		// The miss this request charged in Get stands: it asked the
		// cache and the cache had no answer.
		if errors.Is(err, errShuttingDown) {
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is shutting down"})
		} else {
			// The deadline passed while waiting for a queue slot.
			writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "request timed out before a worker was free"})
		}
		return
	}
	res := <-job.reply // workers always reply: cancellation is bounded by the stop poll

	if useCache && res.err == nil {
		s.cache.Put(nfKey{t: canon, strat: keyStrat}, cacheEntry{nf: res.nf, steps: res.stats.Steps, strat: reqStrat})
		// Durability rides the cold path: the WAL write hides behind the
		// normalization this request just paid for. Only shared-keyed
		// results are persisted — WAL entries reload into the shared
		// partition, which would be unsound for an uncertified
		// outermost result.
		if keyStrat == stratShared {
			s.pers.append(walRecord{
				Version: ver.ID, Spec: sp.Name, Sort: string(canon.Sort),
				Term: canon.String(), NF: res.nf.String(), Steps: res.stats.Steps,
			})
		}
	}
	switch {
	case res.err == nil:
		resp := normRespPool.Get().(*NormalizeResponse)
		*resp = NormalizeResponse{
			Spec:       sp.Name,
			Version:    echoVersion,
			Input:      canon.String(),
			NormalForm: res.nf.String(),
			Steps:      res.stats.Steps,
			Cached:     false,
			Trace:      trace,
		}
		writeJSON(w, http.StatusOK, resp)
		putNormResp(resp)
	case errors.Is(res.err, rewrite.ErrCanceled):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "normalization exceeded the request deadline"})
	default:
		var fuelErr *rewrite.ErrFuel
		if errors.As(res.err, &fuelErr) {
			writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{
				Error: res.err.Error(),
				Steps: fuelErr.Steps,
			})
			return
		}
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: res.err.Error()})
	}
}

// requestContext derives the request's context with the effective
// deadline: the server's -timeout, tightened by the request's
// timeout_ms when that is shorter.
func (s *Server) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if t := time.Duration(timeoutMs) * time.Millisecond; timeoutMs > 0 && (d == 0 || t < d) {
		d = t
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !readJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty source: POST {\"source\": \"spec ... end\"}"})
		return
	}
	depth := req.Depth
	switch {
	case depth <= 0:
		depth = 3
	case depth > 5:
		depth = 5 // ground-term count is exponential in depth
	}
	dynamic := req.Dynamic == nil || *req.Dynamic

	// Uploaded specs are checked in a fresh environment rebuilt from the
	// server's sources: the shared env must never grow request state,
	// and two concurrent uploads must not see each other.
	env := core.NewEnv()
	for _, src := range s.sources {
		if _, err := env.Load(src); err != nil {
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
			return
		}
	}
	added, err := env.Load(req.Source)
	if err != nil {
		writeParseError(w, err)
		return
	}

	resp := CheckResponse{OK: true}
	for _, sp := range added {
		sc := SpecCheck{Name: sp.Name}
		cr := complete.Check(sp)
		sc.Complete = cr.OK()
		if !cr.OK() {
			sc.Problems = append(sc.Problems, strings.TrimSpace(cr.String()))
		}
		kr := consist.Check(sp)
		sc.Consistent = kr.OK()
		if !kr.OK() {
			sc.Problems = append(sc.Problems, strings.TrimSpace(kr.String()))
		}
		if dynamic {
			sys, err := env.System(sp.Name)
			if err != nil {
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
				return
			}
			dr := complete.CheckDynamic(sp, complete.DynamicConfig{Depth: depth, System: sys, Workers: s.cfg.Workers})
			ok := dr.OK()
			sc.DynamicComplete = &ok
			if !ok {
				sc.Problems = append(sc.Problems, strings.TrimSpace(dr.String()))
			}
			gr := consist.CheckGround(sp, consist.GroundConfig{Depth: depth, System: sys, Workers: s.cfg.Workers})
			gok := gr.OK()
			sc.GroundConsistent = &gok
			if !gok {
				sc.Problems = append(sc.Problems, strings.TrimSpace(gr.String()))
			}
		}
		if len(sc.Problems) > 0 {
			resp.OK = false
		}
		resp.Specs = append(resp.Specs, sc)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSpecUpload registers specification source in the content-
// addressed registry: canonical formatting, SHA-256 version id,
// compile-once against the base library. Re-uploading existing content
// is free and answers 200 with the existing id; new content compiles,
// persists (when durability is on) and answers 201.
func (s *Server) handleSpecUpload(w http.ResponseWriter, r *http.Request) {
	var req SpecUploadRequest
	if !readJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty source: POST {\"source\": \"spec ... end\"}"})
		return
	}
	v, created, err := s.reg.Register(req.Source)
	if err != nil {
		writeParseError(w, err)
		return
	}
	if created {
		if err := s.pers.saveSpec(v.ID, v.Source); err != nil {
			s.pers.persistErrs.Add(1)
		}
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, SpecUploadResponse{Version: v.ID, Created: created, Specs: v.Specs})
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	resp := SpecsResponse{Specs: speclib.Summarize(s.env)}
	for i := range resp.Specs {
		// The base version caches one certificate per spec, computed at
		// boot — this is a map lookup, not a completion run.
		if c := s.reg.Base().Certificate(resp.Specs[i].Name); c != nil {
			certified := c.Certified()
			resp.Specs[i].Confluent = &certified
		}
	}
	for _, v := range s.reg.Versions() {
		if v.Source == "" {
			continue // the base library is implied
		}
		resp.Versions = append(resp.Versions, VersionSummary{Version: v.ID, Specs: v.Specs})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the cluster router's liveness probe: uninstrumented
// (a health check must not skew request metrics) and cache-free, it
// answers as long as the process can serve HTTP at all.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Counters()
	pHits, pMisses := s.parsed.Counters()
	st := s.rec.Snapshot()
	var interned int64
	for _, name := range s.env.Names() {
		if sys, err := s.env.System(name); err == nil {
			interned += int64(sys.Interner().Size())
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.exposition(w, hits, misses, pHits, pMisses,
		[6]int64{int64(st.Steps), int64(st.RuleFires), int64(st.MemoHits), int64(st.NativeCalls),
			int64(st.CompiledEvals), int64(st.InterpEvals)}, interned)

	fmt.Fprintln(w, "# HELP adt_registry_versions Registry versions held (base library included).")
	fmt.Fprintln(w, "# TYPE adt_registry_versions gauge")
	fmt.Fprintf(w, "adt_registry_versions %d\n", s.reg.Len())
	fmt.Fprintln(w, "# HELP adt_confluence_certified Base-library specs carrying a confluence + termination certificate.")
	fmt.Fprintln(w, "# TYPE adt_confluence_certified gauge")
	fmt.Fprintf(w, "adt_confluence_certified %d\n", s.certifiedBase)
	fmt.Fprintln(w, "# HELP adt_cache_cross_strategy_hits_total Normal-form cache hits served to a different strategy than the one that computed the entry (certified specs only).")
	fmt.Fprintln(w, "# TYPE adt_cache_cross_strategy_hits_total counter")
	fmt.Fprintf(w, "adt_cache_cross_strategy_hits_total %d\n", s.crossHits.Load())
	for _, c := range []struct {
		name, help string
		kind       string
		val        int64
	}{
		{"adt_conform_sessions_opened_total", "Conformance sessions opened since boot.", "counter", s.conf.opened.Load()},
		{"adt_conform_sessions_active", "Conformance sessions currently live (not closed, reaped or expired).", "gauge", int64(s.conf.active())},
		{"adt_conform_sessions_expired_total", "Conformance sessions reaped by the TTL.", "counter", s.conf.expired.Load()},
		{"adt_conform_sessions_rejected_total", "Conformance opens refused at the session cap (429).", "counter", s.conf.rejected.Load()},
		{"adt_conform_programs_total", "Probe programs served to conformance clients (plan plus shrink candidates).", "counter", s.conf.programs.Load()},
		{"adt_conform_pass_total", "Conformance verdicts that passed.", "counter", s.conf.pass.Load()},
		{"adt_conform_fail_total", "Conformance verdicts that failed (counterexample returned).", "counter", s.conf.fail.Load()},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n", c.name, c.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", c.name, c.kind)
		fmt.Fprintf(w, "%s %d\n", c.name, c.val)
	}
	if s.pers != nil {
		for _, c := range []struct {
			name, help string
			kind       string
			val        int64
		}{
			{"adt_persist_wal_records_total", "Normal-form entries appended to the WAL since boot.", "counter", s.pers.walRecords.Load()},
			{"adt_persist_snapshots_total", "Snapshots written since boot.", "counter", s.pers.snapshots.Load()},
			{"adt_persist_dropped_total", "Entries not persisted because the store hit its capacity bound.", "counter", s.pers.dropped.Load()},
			{"adt_persist_errors_total", "Persistence I/O or integrity errors (a nonzero value at boot means a corrupt store forced a cold start).", "counter", s.pers.persistErrs.Load()},
			{"adt_persist_stale_skipped_total", "Persisted entries skipped because their version is unknown to this boot.", "counter", s.pers.staleSkipped.Load()},
			{"adt_warm_entries", "Cache entries installed warm at boot (persisted store plus corpus warming).", "gauge", s.pers.warmLoaded.Load()},
		} {
			fmt.Fprintf(w, "# HELP %s %s\n", c.name, c.help)
			fmt.Fprintf(w, "# TYPE %s %s\n", c.name, c.kind)
			fmt.Fprintf(w, "%s %d\n", c.name, c.val)
		}
	}
}
