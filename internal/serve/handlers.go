package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"algspec/internal/complete"
	"algspec/internal/consist"
	"algspec/internal/core"
	"algspec/internal/faultinject"
	"algspec/internal/lang"
	"algspec/internal/rewrite"
	"algspec/internal/speclib"
)

// NormalizeRequest is the body of POST /v1/normalize.
type NormalizeRequest struct {
	// Spec names the specification to evaluate against.
	Spec string `json:"spec"`
	// Term is the ground term to normalize, in surface syntax.
	Term string `json:"term"`
	// Trace, when true, returns every rewrite step (and bypasses the
	// normal-form cache, which stores only results).
	Trace bool `json:"trace,omitempty"`
	// Fuel overrides the per-request reduction budget; it is capped by
	// the server's -fuel flag.
	Fuel int `json:"fuel,omitempty"`
	// TimeoutMs overrides the per-request deadline; it is capped by the
	// server's -timeout flag.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// NormalizeResponse is the 200 body of POST /v1/normalize.
type NormalizeResponse struct {
	Spec string `json:"spec"`
	// Input echoes the parsed term in canonical spelling.
	Input      string `json:"input"`
	NormalForm string `json:"normal_form"`
	// Steps is the cold normalization's reduction count (echoed
	// unchanged on cache hits).
	Steps  int         `json:"steps"`
	Cached bool        `json:"cached"`
	Trace  []TraceStep `json:"trace,omitempty"`
}

// TraceStep is one rewrite in a traced normalization.
type TraceStep struct {
	Rule   string `json:"rule"`
	Before string `json:"before"`
	After  string `json:"after"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Line/Col locate a syntax error in the submitted term or source.
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Steps reports how much fuel a 422 burned before giving up.
	Steps int `json:"steps,omitempty"`
}

// CheckRequest is the body of POST /v1/check: specification source to
// run the four checkers on. The source is loaded on top of the server's
// library, so uploads may use library specs.
type CheckRequest struct {
	Source string `json:"source"`
	// Depth bounds the ground-term enumeration of the dynamic checks
	// (default 3, capped at 5 — the term count is exponential in it).
	Depth int `json:"depth,omitempty"`
	// Dynamic disables the two ground-term checkers when set to false.
	Dynamic *bool `json:"dynamic,omitempty"`
}

// CheckResponse reports the four checkers per uploaded spec.
type CheckResponse struct {
	OK    bool        `json:"ok"`
	Specs []SpecCheck `json:"specs"`
}

// SpecCheck is one spec's verdicts. The dynamic fields are absent when
// the request disabled the ground-term checks.
type SpecCheck struct {
	Name             string   `json:"name"`
	Complete         bool     `json:"complete"`
	Consistent       bool     `json:"consistent"`
	DynamicComplete  *bool    `json:"dynamic_complete,omitempty"`
	GroundConsistent *bool    `json:"ground_consistent,omitempty"`
	Problems         []string `json:"problems,omitempty"`
}

// SpecsResponse is the body of GET /v1/specs.
type SpecsResponse struct {
	Specs []speclib.Summary `json:"specs"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// v is one of our own response structs; this cannot fail.
		panic(fmt.Sprintf("serve: marshaling %T: %v", v, err))
	}
	data = append(data, '\n')
	w.Write(data)
}

// maxBodyBytes caps POST bodies: a term or spec source that needs more
// than a megabyte is not a request, it is an attack (or a bug), and
// reading it unbounded would let one client exhaust server memory.
const maxBodyBytes = 1 << 20

// readJSON enforces the POST contract and decodes the body into v:
// the Content-Type must be application/json (415 otherwise — a client
// sending a form or raw bytes should learn so before its payload is
// half-interpreted), and the body is capped at maxBodyBytes via
// http.MaxBytesReader (413 on overflow, and the connection is closed so
// the rest of the oversized body is never read). Returns false when it
// already wrote an error response.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
		writeJSON(w, http.StatusUnsupportedMediaType,
			ErrorResponse{Error: fmt.Sprintf("Content-Type must be application/json (got %q)", ct)})
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				ErrorResponse{Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid JSON body: " + err.Error()})
		return false
	}
	return true
}

// writeParseError answers 400, attaching the first syntax-error
// position when the error carries one.
func writeParseError(w http.ResponseWriter, err error) {
	resp := ErrorResponse{Error: err.Error()}
	var el lang.ErrorList
	var one *lang.Error
	switch {
	case errors.As(err, &el) && len(el) > 0:
		resp.Line, resp.Col = el[0].Line, el[0].Col
	case errors.As(err, &one):
		resp.Line, resp.Col = one.Line, one.Col
	}
	writeJSON(w, http.StatusBadRequest, resp)
}

func (s *Server) handleNormalize(w http.ResponseWriter, r *http.Request) {
	var req NormalizeRequest
	if !readJSON(w, r, &req) {
		return
	}
	sp, ok := s.env.Get(req.Spec)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown specification %q", req.Spec)})
		return
	}
	base, err := s.env.System(sp.Name)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	// The parse cache short-circuits lexing/parsing/sort-checking for
	// hot request strings; on a miss the term is canonicalized into the
	// spec's shared interner, whose canonical pointer is the normal-form
	// cache key (forks resolve it in O(1)).
	parseKey := sp.Name + "\x00" + req.Term
	canon, ok := s.parsed.Get(parseKey)
	if !ok {
		t, err := s.env.ParseTerm(sp.Name, req.Term)
		if err != nil {
			writeParseError(w, err)
			return
		}
		canon = base.Interner().Canon(t)
		s.parsed.Put(parseKey, canon)
	}

	useCache := !req.Trace
	if useCache {
		if hit, ok := s.cache.Get(canon); ok {
			writeJSON(w, http.StatusOK, NormalizeResponse{
				Spec:       sp.Name,
				Input:      canon.String(),
				NormalForm: hit.nf.String(),
				Steps:      hit.steps,
				Cached:     true,
			})
			return
		}
	}

	fuel := s.cfg.Fuel
	if req.Fuel > 0 && req.Fuel < fuel {
		fuel = req.Fuel
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	// The stop flag is the bridge from context-land to the engine: a
	// watcher raises it when the deadline passes (or the client hangs
	// up), and the fork notices within ~1024 reductions.
	var stop atomic.Bool
	go func() {
		<-ctx.Done()
		stop.Store(true)
	}()

	var trace []TraceStep
	opts := []rewrite.Option{rewrite.WithMaxSteps(fuel), rewrite.WithStop(&stop)}
	if faultinject.Armed() {
		// The engine-level fault points ride the request's fork via the
		// same seam the deadline does; the Armed check keeps the normal
		// path free of the extra option (and its closure).
		opts = append(opts, rewrite.WithFault(engineFaultHook))
	}
	if req.Trace {
		opts = append(opts, rewrite.WithTrace(func(ts rewrite.TraceStep) {
			trace = append(trace, TraceStep{Rule: ts.Rule.Label, Before: ts.Before.String(), After: ts.After.String()})
		}))
	}
	job := &normJob{
		ctx:   ctx,
		sys:   base.Fork(opts...),
		t:     canon,
		stop:  &stop,
		reply: make(chan normResult, 1),
	}
	if err := s.pool.submit(job); err != nil {
		// The miss this request charged in Get stands: it asked the
		// cache and the cache had no answer.
		if errors.Is(err, errShuttingDown) {
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is shutting down"})
		} else {
			// The deadline passed while waiting for a queue slot.
			writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "request timed out before a worker was free"})
		}
		return
	}
	res := <-job.reply // workers always reply: cancellation is bounded by the stop poll

	if useCache && res.err == nil {
		s.cache.Put(canon, cacheEntry{nf: res.nf, steps: res.stats.Steps})
	}
	switch {
	case res.err == nil:
		writeJSON(w, http.StatusOK, NormalizeResponse{
			Spec:       sp.Name,
			Input:      canon.String(),
			NormalForm: res.nf.String(),
			Steps:      res.stats.Steps,
			Cached:     false,
			Trace:      trace,
		})
	case errors.Is(res.err, rewrite.ErrCanceled):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "normalization exceeded the request deadline"})
	default:
		var fuelErr *rewrite.ErrFuel
		if errors.As(res.err, &fuelErr) {
			writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{
				Error: res.err.Error(),
				Steps: fuelErr.Steps,
			})
			return
		}
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: res.err.Error()})
	}
}

// requestContext derives the request's context with the effective
// deadline: the server's -timeout, tightened by the request's
// timeout_ms when that is shorter.
func (s *Server) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if t := time.Duration(timeoutMs) * time.Millisecond; timeoutMs > 0 && (d == 0 || t < d) {
		d = t
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !readJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty source: POST {\"source\": \"spec ... end\"}"})
		return
	}
	depth := req.Depth
	switch {
	case depth <= 0:
		depth = 3
	case depth > 5:
		depth = 5 // ground-term count is exponential in depth
	}
	dynamic := req.Dynamic == nil || *req.Dynamic

	// Uploaded specs are checked in a fresh environment rebuilt from the
	// server's sources: the shared env must never grow request state,
	// and two concurrent uploads must not see each other.
	env := core.NewEnv()
	for _, src := range s.sources {
		if _, err := env.Load(src); err != nil {
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
			return
		}
	}
	added, err := env.Load(req.Source)
	if err != nil {
		writeParseError(w, err)
		return
	}

	resp := CheckResponse{OK: true}
	for _, sp := range added {
		sc := SpecCheck{Name: sp.Name}
		cr := complete.Check(sp)
		sc.Complete = cr.OK()
		if !cr.OK() {
			sc.Problems = append(sc.Problems, strings.TrimSpace(cr.String()))
		}
		kr := consist.Check(sp)
		sc.Consistent = kr.OK()
		if !kr.OK() {
			sc.Problems = append(sc.Problems, strings.TrimSpace(kr.String()))
		}
		if dynamic {
			sys, err := env.System(sp.Name)
			if err != nil {
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
				return
			}
			dr := complete.CheckDynamic(sp, complete.DynamicConfig{Depth: depth, System: sys, Workers: s.cfg.Workers})
			ok := dr.OK()
			sc.DynamicComplete = &ok
			if !ok {
				sc.Problems = append(sc.Problems, strings.TrimSpace(dr.String()))
			}
			gr := consist.CheckGround(sp, consist.GroundConfig{Depth: depth, System: sys, Workers: s.cfg.Workers})
			gok := gr.OK()
			sc.GroundConsistent = &gok
			if !gok {
				sc.Problems = append(sc.Problems, strings.TrimSpace(gr.String()))
			}
		}
		if len(sc.Problems) > 0 {
			resp.OK = false
		}
		resp.Specs = append(resp.Specs, sc)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SpecsResponse{Specs: speclib.Summarize(s.env)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Counters()
	pHits, pMisses := s.parsed.Counters()
	st := s.rec.Snapshot()
	var interned int64
	for _, name := range s.env.Names() {
		if sys, err := s.env.System(name); err == nil {
			interned += int64(sys.Interner().Size())
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.exposition(w, hits, misses, pHits, pMisses,
		[6]int64{int64(st.Steps), int64(st.RuleFires), int64(st.MemoHits), int64(st.NativeCalls),
			int64(st.CompiledEvals), int64(st.InterpEvals)}, interned)
}
