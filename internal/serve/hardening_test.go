package serve_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"algspec/internal/serve"
)

// doRaw is do() without the automatic Content-Type, for exercising the
// media-type guard.
func doRaw(t testing.TB, ts *httptest.Server, method, path, contentType, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestContentTypeEnforced pins the 415 path on both POST endpoints:
// form posts, raw bytes and missing headers must all be refused before
// a byte of the body is interpreted.
func TestContentTypeEnforced(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})

	code, body := doRaw(t, ts, "POST", "/v1/normalize",
		"application/x-www-form-urlencoded", `spec=Queue&term=new`)
	if code != http.StatusUnsupportedMediaType {
		t.Fatalf("form post = %d: %s", code, body)
	}
	checkGolden(t, "unsupported_media_type.json", body)

	for _, ct := range []string{"", "text/plain", "application/jsonx"} {
		for _, path := range []string{"/v1/normalize", "/v1/check"} {
			code, body := doRaw(t, ts, "POST", path, ct, `{"spec":"Queue","term":"new"}`)
			if code != http.StatusUnsupportedMediaType {
				t.Errorf("POST %s with Content-Type %q = %d: %s", path, ct, code, body)
			}
		}
	}

	// A charset parameter on the right media type is still JSON.
	code, body = doRaw(t, ts, "POST", "/v1/normalize",
		"application/json; charset=utf-8", `{"spec":"Queue","term":"isEmpty?(new)"}`)
	if code != http.StatusOK || !strings.Contains(body, `"true"`) {
		t.Errorf("charset-parameterized JSON = %d: %s", code, body)
	}
}

// TestBodySizeCapped pins the 413 path: a body over the megabyte cap is
// cut off by http.MaxBytesReader, on both POST endpoints.
func TestBodySizeCapped(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})
	huge := `{"spec":"Queue","term":"` + strings.Repeat(" ", 1<<20) + `new"}`

	code, body := doRaw(t, ts, "POST", "/v1/normalize", "application/json", huge)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized normalize = %d: %s", code, body)
	}
	checkGolden(t, "body_too_large.json", body)

	code, body = doRaw(t, ts, "POST", "/v1/check", "application/json", huge)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized check = %d: %s", code, body)
	}

	// Just under the cap must still be parsed (and then rejected on its
	// merits, not its size).
	small := `{"spec":"Queue","term":"isEmpty?(new)"}`
	code, body = doRaw(t, ts, "POST", "/v1/normalize", "application/json", small)
	if code != http.StatusOK {
		t.Errorf("normal-sized body = %d: %s", code, body)
	}
}
