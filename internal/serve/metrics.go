package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// metrics is the server's observation surface, exposed at GET /metrics
// in the Prometheus text format. Everything here is cumulative since
// process start; the soak test reconciles these counters exactly
// against the requests it made, so updates must never be lost — counts
// per (endpoint, code) live under one mutex taken once per request
// (after the response is written, off the latency-critical path), and
// the high-frequency counters (cache, engine stats, in-flight) are
// atomics owned elsewhere and only read at exposition time.
type metrics struct {
	mu       sync.Mutex
	requests map[requestKey]int64
	hist     map[string]*histogram
	inFlight atomic.Int64
}

type requestKey struct {
	endpoint string
	code     int
}

// latencyBuckets are the histogram upper bounds in seconds. The low end
// resolves a warm cache hit (tens of microseconds); the high end covers
// a normalization that rides its full default fuel.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

type histogram struct {
	counts [len(latencyBuckets) + 1]int64 // last slot is +Inf
	sum    float64
	total  int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[requestKey]int64),
		hist:     make(map[string]*histogram),
	}
}

// observe records one completed request: its endpoint, response code
// and wall-clock duration in seconds.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{endpoint, code}]++
	h := m.hist[endpoint]
	if h == nil {
		h = &histogram{}
		m.hist[endpoint] = h
	}
	i := sort.SearchFloat64s(latencyBuckets[:], seconds)
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// exposition writes the full metrics page. The caller supplies the
// gauges and counters owned by other subsystems (cache, engine stats
// recorder, interner) so this file stays free of their types. Output
// order is deterministic (sorted label sets) to keep it diffable.
func (m *metrics) exposition(w io.Writer, cacheHits, cacheMisses, parseHits, parseMisses int64, engine [6]int64, interned int64) {
	fmt.Fprintln(w, "# HELP adt_requests_total Requests served, by endpoint and HTTP status code.")
	fmt.Fprintln(w, "# TYPE adt_requests_total counter")
	m.mu.Lock()
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "adt_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP adt_in_flight API requests currently being served (excludes /metrics itself).")
	fmt.Fprintln(w, "# TYPE adt_in_flight gauge")
	fmt.Fprintf(w, "adt_in_flight %d\n", m.inFlight.Load())

	fmt.Fprintln(w, "# HELP adt_cache_hits_total Normal-form cache hits.")
	fmt.Fprintln(w, "# TYPE adt_cache_hits_total counter")
	fmt.Fprintf(w, "adt_cache_hits_total %d\n", cacheHits)
	fmt.Fprintln(w, "# HELP adt_cache_misses_total Normal-form cache misses.")
	fmt.Fprintln(w, "# TYPE adt_cache_misses_total counter")
	fmt.Fprintf(w, "adt_cache_misses_total %d\n", cacheMisses)
	fmt.Fprintln(w, "# HELP adt_parse_cache_hits_total Parse cache hits (term text resolved without reparsing).")
	fmt.Fprintln(w, "# TYPE adt_parse_cache_hits_total counter")
	fmt.Fprintf(w, "adt_parse_cache_hits_total %d\n", parseHits)
	fmt.Fprintln(w, "# HELP adt_parse_cache_misses_total Parse cache misses.")
	fmt.Fprintln(w, "# TYPE adt_parse_cache_misses_total counter")
	fmt.Fprintf(w, "adt_parse_cache_misses_total %d\n", parseMisses)

	for i, name := range [...]string{
		"adt_engine_steps_total",
		"adt_engine_rule_fires_total",
		"adt_engine_memo_hits_total",
		"adt_engine_native_calls_total",
		"adt_engine_compiled_evals_total",
		"adt_engine_interp_evals_total",
	} {
		fmt.Fprintf(w, "# HELP %s Cumulative engine work across all request forks.\n", name)
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, engine[i])
	}

	fmt.Fprintln(w, "# HELP adt_interned_terms Canonical terms held by the per-spec interners.")
	fmt.Fprintln(w, "# TYPE adt_interned_terms gauge")
	fmt.Fprintf(w, "adt_interned_terms %d\n", interned)

	fmt.Fprintln(w, "# HELP adt_request_duration_seconds Request latency, by endpoint.")
	fmt.Fprintln(w, "# TYPE adt_request_duration_seconds histogram")
	eps := make([]string, 0, len(m.hist))
	for ep := range m.hist {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		h := m.hist[ep]
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "adt_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "adt_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "adt_request_duration_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "adt_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.total)
	}
	m.mu.Unlock()
}
