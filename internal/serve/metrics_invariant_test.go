package serve_test

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"algspec/internal/serve"
)

// counterLine matches any single-value metric sample (counters and
// gauges; histogram buckets carry an le label and are parsed apart).
var counterLine = regexp.MustCompile(`(?m)^(adt_[a-z_]+(?:\{[^}]*\})?) ([0-9.e+-]+)$`)

// bucketLine matches one histogram bucket sample, capturing the
// endpoint, the le bound and the cumulative count.
var bucketLine = regexp.MustCompile(`(?m)^adt_request_duration_seconds_bucket\{endpoint="([a-z]+)",le="([^"]+)"\} (\d+)$`)

func scrape(t *testing.T, url string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(data)
	samples := make(map[string]float64)
	for _, m := range counterLine.FindAllStringSubmatch(page, -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", m[0], err)
		}
		samples[m[1]] = v
	}
	return samples, page
}

// TestMetricsMonotoneUnderLoad scrapes /metrics twice with concurrent
// traffic in between and asserts the counter contract: every cumulative
// series is monotone non-decreasing, and within each histogram the
// buckets are cumulative-monotone in le with le="+Inf" equal to _count.
func TestMetricsMonotoneUnderLoad(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 4})

	hammer := func(rounds int) {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					switch i % 3 {
					case 0:
						do(t, ts, "POST", "/v1/normalize",
							fmt.Sprintf(`{"spec":"Queue","term":"front(add(new, 'w%dr%d))"}`, w, i))
					case 1:
						do(t, ts, "POST", "/v1/normalize", `{"spec":"Ghost","term":"x"}`)
					default:
						do(t, ts, "GET", "/v1/specs", "")
					}
				}
			}(w)
		}
		wg.Wait()
	}

	hammer(10)
	before, _ := scrape(t, ts.URL)
	hammer(10)
	after, page := scrape(t, ts.URL)

	gauges := map[string]bool{"adt_in_flight": true, "adt_interned_terms": true}
	for series, v0 := range before {
		name, _, _ := strings.Cut(series, "{")
		if gauges[name] {
			continue
		}
		v1, ok := after[series]
		if !ok {
			t.Errorf("series %s vanished between scrapes", series)
			continue
		}
		if v1 < v0 {
			t.Errorf("counter %s went backwards: %g -> %g", series, v0, v1)
		}
	}

	// Histogram shape: per endpoint, bucket counts appear in exposition
	// order (ascending le, +Inf last) and must be non-decreasing, with
	// the +Inf bucket equal to the series _count.
	buckets := make(map[string][]int64)
	inf := make(map[string]int64)
	for _, m := range bucketLine.FindAllStringSubmatch(page, -1) {
		n, _ := strconv.ParseInt(m[3], 10, 64)
		if m[2] == "+Inf" {
			inf[m[1]] = n
		}
		buckets[m[1]] = append(buckets[m[1]], n)
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets on the metrics page")
	}
	for ep, counts := range buckets {
		for i := 1; i < len(counts); i++ {
			if counts[i] < counts[i-1] {
				t.Errorf("endpoint %s: bucket %d (%d) below bucket %d (%d); cumulative histograms must be monotone in le",
					ep, i, counts[i], i-1, counts[i-1])
			}
		}
		count, ok := after[fmt.Sprintf(`adt_request_duration_seconds_count{endpoint=%q}`, ep)]
		if !ok {
			t.Errorf("endpoint %s: histogram has buckets but no _count", ep)
			continue
		}
		if float64(inf[ep]) != count {
			t.Errorf("endpoint %s: le=\"+Inf\" bucket %d != _count %g", ep, inf[ep], count)
		}
	}
}
