package serve

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the durability layer of the normal-form cache (DESIGN
// §13): a periodic snapshot plus an append-only write-ahead log of
// (version, spec, term) → (normal form, steps) entries, both integrity-
// digested, so a restarted replica answers its first request from the
// warm cache instead of paying the cold path again. The layout under
// Config.PersistDir:
//
//	specs/<hex>.spec   canonical source of each uploaded version
//	                   (content-addressed: the filename is the version
//	                   hash, so corruption is self-evident)
//	nf.snapshot        full entry set at the last snapshot, with a
//	                   trailing SHA-256 over the payload
//	nf.wal             entries appended since that snapshot, one line
//	                   each, prefixed with a truncated SHA-256 of the
//	                   line's payload
//
// Corruption anywhere is rejected loudly: load returns an error naming
// the file and the server falls back to a cold start (the cache is an
// accelerator, never a source of truth). Both files store only strings,
// never pointers — the canonical-term text is re-parsed and re-interned
// at boot, which is what makes the entries portable across processes.

// walRecord is one persisted cache entry. Term and NF are canonical
// spellings; Sort is the term's root sort, which disambiguates bare
// atoms and error values when the NF text is parsed back at boot.
type walRecord struct {
	Version string `json:"version"`
	Spec    string `json:"spec"`
	Sort    string `json:"sort"`
	Term    string `json:"term"`
	NF      string `json:"nf"`
	Steps   int    `json:"steps"`
}

const (
	snapshotFile   = "nf.snapshot"
	walFile        = "nf.wal"
	specsDir       = "specs"
	snapshotHeader = "adt-nf-snapshot v1"
	snapshotFooter = "sha256 "
)

// persister owns the persist directory. A nil *persister (no
// Config.PersistDir) is valid and makes every method a no-op, mirroring
// the nil cache. The in-memory record set is the snapshot's source: it
// is seeded from the previous snapshot+WAL at boot and grows with every
// appended entry, so a snapshot always captures everything known, not
// just what the current LRU happens to retain.
type persister struct {
	dir string
	cap int

	mu   sync.Mutex
	seen map[string]struct{}
	recs []walRecord
	wal  *os.File

	walRecords   atomic.Int64 // entries appended to the WAL since boot
	snapshots    atomic.Int64 // snapshots written since boot
	dropped      atomic.Int64 // entries not persisted (capacity)
	persistErrs  atomic.Int64 // I/O or integrity errors (boot load, saves)
	staleSkipped atomic.Int64 // records for versions this boot cannot resolve
	warmLoaded   atomic.Int64 // cache entries installed warm at boot
}

// newPersister prepares the directory tree and opens the WAL for
// appending. cap bounds the record set (and with it the snapshot size);
// entries beyond it are counted in dropped, never silently lost track
// of.
func newPersister(dir string, cap int) (*persister, error) {
	if err := os.MkdirAll(filepath.Join(dir, specsDir), 0o755); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &persister{
		dir:  dir,
		cap:  cap,
		seen: make(map[string]struct{}),
		wal:  wal,
	}, nil
}

func recordKey(rec walRecord) string {
	return rec.Version + "\x00" + rec.Spec + "\x00" + rec.Term
}

// append books one freshly computed entry and writes it to the WAL.
// Called on the cold path only (the entry was just normalized), so the
// write syscall hides behind a full normalization.
func (p *persister) append(rec walRecord) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := recordKey(rec)
	if _, dup := p.seen[key]; dup {
		return
	}
	if len(p.recs) >= p.cap {
		p.dropped.Add(1)
		return
	}
	p.seen[key] = struct{}{}
	p.recs = append(p.recs, rec)
	line, err := json.Marshal(rec)
	if err != nil {
		// rec is our own struct of strings and an int; cannot fail.
		panic(fmt.Sprintf("serve: marshaling wal record: %v", err))
	}
	fmt.Fprintf(p.wal, "%s %s\n", lineDigest(line), line)
	p.walRecords.Add(1)
}

// seed installs records restored from disk without re-writing them;
// they will be carried forward by the next snapshot.
func (p *persister) seed(recs []walRecord) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rec := range recs {
		key := recordKey(rec)
		if _, dup := p.seen[key]; dup {
			continue
		}
		if len(p.recs) >= p.cap {
			p.dropped.Add(1)
			continue
		}
		p.seen[key] = struct{}{}
		p.recs = append(p.recs, rec)
	}
}

// snapshot writes the full record set atomically (temp file + rename)
// and truncates the WAL, whose entries the snapshot now subsumes.
func (p *persister) snapshot() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder
	digest := sha256.New()
	for _, rec := range p.recs {
		line, err := json.Marshal(rec)
		if err != nil {
			panic(fmt.Sprintf("serve: marshaling snapshot record: %v", err))
		}
		b.Write(line)
		b.WriteByte('\n')
		digest.Write(line)
		digest.Write([]byte{'\n'})
	}
	content := snapshotHeader + "\n" + b.String() + snapshotFooter + hex.EncodeToString(digest.Sum(nil)) + "\n"
	tmp := filepath.Join(p.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, snapshotFile)); err != nil {
		return err
	}
	if err := p.wal.Truncate(0); err != nil {
		return err
	}
	p.snapshots.Add(1)
	return nil
}

// saveSpec persists an uploaded version's canonical source under its
// content address. Idempotent: the same version always writes the same
// bytes to the same name.
func (p *persister) saveSpec(id, canonicalSource string) error {
	if p == nil {
		return nil
	}
	name := strings.TrimPrefix(id, "sha256:") + ".spec"
	return os.WriteFile(filepath.Join(p.dir, specsDir, name), []byte(canonicalSource), 0o644)
}

// close snapshots one last time and releases the WAL handle.
func (p *persister) close() {
	if p == nil {
		return
	}
	_ = p.snapshot()
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.wal.Close()
}

// lineDigest is the truncated SHA-256 prefix guarding one WAL line.
func lineDigest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:8])
}

// loadNFStore reads the snapshot and WAL back, verifying every digest.
// Any corruption — a flipped byte in a record, a truncated snapshot, a
// forged digest — returns an error naming the offending file and line;
// the caller falls back to a cold start.
func loadNFStore(dir string) ([]walRecord, error) {
	var recs []walRecord
	snap := filepath.Join(dir, snapshotFile)
	if data, err := os.ReadFile(snap); err == nil {
		sr, err := parseSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", snap, err)
		}
		recs = append(recs, sr...)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	wal := filepath.Join(dir, walFile)
	if data, err := os.ReadFile(wal); err == nil {
		wr, err := parseWAL(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wal, err)
		}
		recs = append(recs, wr...)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return recs, nil
}

func parseSnapshot(data []byte) ([]walRecord, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) < 2 || lines[0] != snapshotHeader {
		return nil, fmt.Errorf("snapshot header missing or unrecognized (want %q)", snapshotHeader)
	}
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, snapshotFooter) {
		return nil, fmt.Errorf("snapshot truncated: no %q footer", strings.TrimSpace(snapshotFooter))
	}
	payload := lines[1 : len(lines)-1]
	digest := sha256.New()
	var recs []walRecord
	for i, line := range payload {
		var rec walRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("snapshot record %d: %w", i+1, err)
		}
		digest.Write([]byte(line))
		digest.Write([]byte{'\n'})
		recs = append(recs, rec)
	}
	want := strings.TrimPrefix(last, snapshotFooter)
	if got := hex.EncodeToString(digest.Sum(nil)); got != want {
		return nil, fmt.Errorf("snapshot digest mismatch: payload hashes to %s, footer says %s", got, want)
	}
	return recs, nil
}

func parseWAL(data []byte) ([]walRecord, error) {
	var recs []walRecord
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		digest, payload, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("wal line %d: no digest prefix", lineNo)
		}
		if lineDigest([]byte(payload)) != digest {
			return nil, fmt.Errorf("wal line %d: digest mismatch (corrupt or tampered record)", lineNo)
		}
		var rec walRecord
		if err := json.Unmarshal([]byte(payload), &rec); err != nil {
			return nil, fmt.Errorf("wal line %d: %w", lineNo, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// loadSpecSources reads back every persisted upload, verifying each
// file's content address against its name. Corrupt files are returned
// as errors alongside the sources that did verify: one bad upload must
// not take out the rest.
func loadSpecSources(dir string) (sources []string, errs []error) {
	entries, err := os.ReadDir(filepath.Join(dir, specsDir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, []error{err}
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".spec") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, specsDir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		sources = append(sources, string(data))
	}
	return sources, errs
}
