package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
)

// The parse helpers must reject corruption with errors an operator can
// act on: the message names what is wrong (header, footer, digest,
// line number), never a bare "invalid data".

func TestParseSnapshotErrors(t *testing.T) {
	rec := `{"version":"sha256:ab","spec":"Queue","sort":"Queue","term":"new","nf":"new","steps":0}`
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty file", "", "header missing"},
		{"wrong header", "nf-cache v0\n" + rec + "\n", "header missing"},
		{"no footer", "adt-nf-snapshot v1\n" + rec + "\n", "snapshot truncated"},
		{"bad record json", "adt-nf-snapshot v1\n{oops\nsha256 00\n", "snapshot record 1"},
		{"digest mismatch", "adt-nf-snapshot v1\n" + rec + "\nsha256 " + strings.Repeat("0", 64) + "\n", "digest mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseSnapshot([]byte(tc.data))
			if err == nil {
				t.Fatalf("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not explain the corruption (want substring %q)", err, tc.want)
			}
		})
	}
}

func TestParseSnapshotRoundTrip(t *testing.T) {
	rec := `{"version":"sha256:ab","spec":"Queue","sort":"Queue","term":"new","nf":"new","steps":0}`
	data := "adt-nf-snapshot v1\n" + rec + "\nsha256 " + sumLines(rec) + "\n"
	recs, err := parseSnapshot([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Spec != "Queue" || recs[0].Version != "sha256:ab" {
		t.Fatalf("round trip lost the record: %+v", recs)
	}
}

func TestParseWALErrors(t *testing.T) {
	payload := `{"version":"sha256:ab","spec":"Queue","sort":"Queue","term":"new","nf":"new","steps":0}`
	good := lineDigest([]byte(payload)) + " " + payload
	cases := []struct {
		name string
		data string
		want string
	}{
		{"no digest prefix", "nodigesthere\n", "wal line 1: no digest prefix"},
		{"digest mismatch", "deadbeefdeadbeef " + payload + "\n", "wal line 1: digest mismatch"},
		{"bad json behind valid digest", lineDigest([]byte("{oops")) + " {oops\n", "wal line 1"},
		{"second line corrupt", good + "\n" + "deadbeefdeadbeef " + payload + "\n", "wal line 2: digest mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseWAL([]byte(tc.data))
			if err == nil {
				t.Fatalf("corrupt WAL accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not explain the corruption (want substring %q)", err, tc.want)
			}
		})
	}
}

func TestParseWALRoundTrip(t *testing.T) {
	payload := `{"version":"sha256:ab","spec":"Queue","sort":"Queue","term":"new","nf":"new","steps":3}`
	line := lineDigest([]byte(payload)) + " " + payload + "\n"
	recs, err := parseWAL([]byte(line + line)) // duplicate lines are legal; dedup happens at seed time
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Steps != 3 {
		t.Fatalf("round trip lost records: %+v", recs)
	}
}

// sumLines mirrors the snapshot writer's running digest over payload
// lines (each line plus its newline).
func sumLines(lines ...string) string {
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
