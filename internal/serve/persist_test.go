package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"algspec/internal/serve"
)

func normalizeBody(t testing.TB, spec, term, version string) string {
	t.Helper()
	req := map[string]any{"spec": spec, "term": term}
	if version != "" {
		req["version"] = version
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func decodeNormalize(t testing.TB, body string) serve.NormalizeResponse {
	t.Helper()
	var resp serve.NormalizeResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad normalize body %q: %v", body, err)
	}
	return resp
}

// TestRestartWarm is the durability acceptance test: a server that
// normalized a term, snapshotted and shut down must answer the same
// request as a cache hit immediately after restart — the cold path is
// paid once per cluster lifetime, not once per process.
func TestRestartWarm(t *testing.T) {
	dir := t.TempDir()
	term := "front(add(add(new, 'x), 'y))"

	srv1, err := serve.New(serve.Config{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestServerFrom(t, srv1)
	code, body := do(t, ts1, "POST", "/v1/normalize", normalizeBody(t, "Queue", term, ""))
	if code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", code, body)
	}
	first := decodeNormalize(t, body)
	if first.Cached {
		t.Fatalf("first request claims to be cached: %s", body)
	}
	ts1.Close()
	srv1.Close() // writes the final snapshot

	srv2, err := serve.New(serve.Config{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestServerFrom(t, srv2)
	defer func() { ts2.Close(); srv2.Close() }()
	code, body = do(t, ts2, "POST", "/v1/normalize", normalizeBody(t, "Queue", term, ""))
	if code != http.StatusOK {
		t.Fatalf("post-restart request: status %d: %s", code, body)
	}
	second := decodeNormalize(t, body)
	if !second.Cached {
		t.Fatalf("first post-restart request missed the cache: %s", body)
	}
	if second.NormalForm != first.NormalForm || second.Steps != first.Steps {
		t.Fatalf("restarted answer diverged: %+v vs %+v", second, first)
	}
}

// TestRestartWarmFromWALOnly covers the crash path: the first server
// never closes (no snapshot), so the second boot replays the WAL alone.
func TestRestartWarmFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	term := "front(add(add(new, 'q), 'r))"

	srv1, err := serve.New(serve.Config{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestServerFrom(t, srv1)
	t.Cleanup(func() { ts1.Close(); srv1.Close() })
	if code, body := do(t, ts1, "POST", "/v1/normalize", normalizeBody(t, "Queue", term, "")); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if _, err := os.Stat(filepath.Join(dir, "nf.snapshot")); !os.IsNotExist(err) {
		t.Fatalf("snapshot exists before any close (stat err %v); WAL-only path not exercised", err)
	}

	srv2, err := serve.New(serve.Config{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestServerFrom(t, srv2)
	defer func() { ts2.Close(); srv2.Close() }()
	code, body := do(t, ts2, "POST", "/v1/normalize", normalizeBody(t, "Queue", term, ""))
	if code != http.StatusOK || !decodeNormalize(t, body).Cached {
		t.Fatalf("WAL replay did not warm the cache (status %d): %s", code, body)
	}
}

// TestRestartWarmUpload: an uploaded version and its cache entries
// survive a restart together — the persisted spec source re-registers
// under the same content address, so persisted NF entries for it
// resolve.
func TestRestartWarmUpload(t *testing.T) {
	dir := t.TempDir()

	srv1, err := serve.New(serve.Config{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestServerFrom(t, srv1)
	src, _ := json.Marshal(goodCheckSrc)
	code, body := do(t, ts1, "POST", "/v1/specs", fmt.Sprintf(`{"source":%s}`, src))
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", code, body)
	}
	var up serve.SpecUploadResponse
	if err := json.Unmarshal([]byte(body), &up); err != nil {
		t.Fatal(err)
	}
	code, body = do(t, ts1, "POST", "/v1/normalize", normalizeBody(t, "Toggle", "lit?(on(off))", up.Version))
	if code != http.StatusOK {
		t.Fatalf("versioned normalize: status %d: %s", code, body)
	}
	ts1.Close()
	srv1.Close()

	srv2, err := serve.New(serve.Config{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestServerFrom(t, srv2)
	defer func() { ts2.Close(); srv2.Close() }()
	code, body = do(t, ts2, "POST", "/v1/normalize", normalizeBody(t, "Toggle", "lit?(on(off))", up.Version))
	if code != http.StatusOK {
		t.Fatalf("versioned normalize after restart: status %d: %s", code, body)
	}
	resp := decodeNormalize(t, body)
	if !resp.Cached || resp.NormalForm != "true" || resp.Version != up.Version {
		t.Fatalf("restarted versioned answer wrong: %s", body)
	}
}

// corruptOneByte flips one byte in the middle of the file.
func corruptOneByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("%s is empty, nothing to corrupt", path)
	}
	i := len(data) / 2
	data[i] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptStoreColdStart: flipping a single byte anywhere in the
// persisted store must be detected at boot — the server starts cold
// (correctness over warmth), serves normally, and raises
// adt_persist_errors_total so an operator sees the corruption.
func TestCorruptStoreColdStart(t *testing.T) {
	for _, file := range []string{"nf.snapshot", "nf.wal"} {
		t.Run(file, func(t *testing.T) {
			dir := t.TempDir()
			term := "front(add(add(new, 'x), 'y))"

			srv1, err := serve.New(serve.Config{PersistDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			ts1 := newTestServerFrom(t, srv1)
			if code, body := do(t, ts1, "POST", "/v1/normalize", normalizeBody(t, "Queue", term, "")); code != http.StatusOK {
				t.Fatalf("status %d: %s", code, body)
			}
			ts1.Close()
			if file == "nf.snapshot" {
				srv1.Close() // fold the WAL into a snapshot, then corrupt that
			} else {
				defer srv1.Close()
			}
			corruptOneByte(t, filepath.Join(dir, file))

			srv2, err := serve.New(serve.Config{PersistDir: dir})
			if err != nil {
				t.Fatalf("boot over a corrupt store must fall back cold, got error: %v", err)
			}
			ts2 := newTestServerFrom(t, srv2)
			defer func() { ts2.Close(); srv2.Close() }()

			_, page := do(t, ts2, "GET", "/metrics", "")
			if got := metricValue(t, page, "adt_persist_errors_total"); got == 0 {
				t.Fatalf("corruption in %s went uncounted:\n%s", file, page)
			}
			if got := metricValue(t, page, "adt_warm_entries"); got != 0 {
				t.Fatalf("%d entr(ies) loaded from a corrupt %s", got, file)
			}
			code, body := do(t, ts2, "POST", "/v1/normalize", normalizeBody(t, "Queue", term, ""))
			if code != http.StatusOK || decodeNormalize(t, body).Cached {
				t.Fatalf("cold fallback broken (status %d): %s", code, body)
			}
		})
	}
}

// TestWarmFromCorpus: Config.Warm alone (no persisted store) must make
// the first golden-corpus request a cache hit.
func TestWarmFromCorpus(t *testing.T) {
	ts := newTestServer(t, serve.Config{Warm: true})
	code, body := do(t, ts, "POST", "/v1/normalize",
		normalizeBody(t, "Queue", "front(add(add(new, 'a), 'b))", ""))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if !decodeNormalize(t, body).Cached {
		t.Fatalf("corpus warming missed the golden battery: %s", body)
	}
}
