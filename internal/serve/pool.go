package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"algspec/internal/rewrite"
	"algspec/internal/term"
)

// errShuttingDown is returned by submit once Close has begun; the
// handler maps it to 503.
var errShuttingDown = errors.New("serve: shutting down")

// normJob is one normalization handed to the pool. The System is a
// per-request Fork carrying the request's fuel, stop flag and optional
// trace collector, so workers share no mutable engine state — the fork
// discipline from the parallel checkers, applied to HTTP. reply is
// buffered: a worker can always deliver and move on even if the handler
// has already timed out and gone away.
type normJob struct {
	ctx   context.Context
	sys   *rewrite.System
	t     *term.Term
	stop  *atomic.Bool
	reply chan normResult
}

type normResult struct {
	nf    *term.Term
	stats rewrite.Stats
	err   error
}

// pool is a bounded set of worker goroutines draining a job queue. The
// bound is the server's concurrency limit on engine work: HTTP handlers
// beyond it queue (and give up if their deadline passes first) instead
// of spawning unbounded normalizations.
type pool struct {
	jobs chan *normJob
	rec  *rewrite.StatsRecorder

	mu        sync.Mutex
	closed    bool
	submits   sync.WaitGroup // in-flight submit calls, for a safe close
	workersWG sync.WaitGroup
}

func newPool(workers int, rec *rewrite.StatsRecorder) *pool {
	p := &pool{
		// A modest queue absorbs bursts without unbounding latency; a
		// handler whose deadline passes while queued is skipped by the
		// worker via its stop flag.
		jobs: make(chan *normJob, workers*4),
		rec:  rec,
	}
	p.workersWG.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.workersWG.Done()
	for j := range p.jobs {
		if r, ok := fpPoolDelay.Fire(); ok {
			// Injected worker stall: queue pressure without queue growth.
			time.Sleep(r.Delay)
		}
		if j.stop != nil && j.stop.Load() {
			// The deadline passed while the job sat in the queue; don't
			// start work nobody is waiting for.
			j.reply <- normResult{err: rewrite.ErrCanceled}
			continue
		}
		nf, err := j.sys.Normalize(j.t)
		st := j.sys.Stats()
		p.rec.Record(st)
		j.reply <- normResult{nf: nf, stats: st, err: err}
	}
}

// submit enqueues a job, blocking while the queue is full until either
// a worker frees a slot or the job's context expires. It returns
// errShuttingDown once Close has begun.
func (p *pool) submit(j *normJob) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errShuttingDown
	}
	p.submits.Add(1)
	p.mu.Unlock()
	defer p.submits.Done()
	if _, ok := fpPoolSaturate.Fire(); ok {
		// Injected saturation: behave as a full queue whose slot never
		// frees within the deadline. Returning the context error directly
		// (instead of blocking until it expires) keeps the fault cheap
		// and its schedule deterministic; the handler maps it to 504.
		return context.DeadlineExceeded
	}
	select {
	case p.jobs <- j:
		return nil
	case <-j.ctx.Done():
		return j.ctx.Err()
	}
}

// close drains the pool: no new submits are accepted, queued and
// running jobs finish (bounded by their own fuel and stop flags), and
// close returns once every worker has exited. This is the
// "drain in-flight normalizations" half of graceful shutdown; the HTTP
// half (http.Server.Shutdown) has already stopped new requests by the
// time the server calls this.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.submits.Wait() // no submit is still holding a send on jobs
	close(p.jobs)
	p.workersWG.Wait()
}
