//go:build race

package serve_test

// raceEnabled reports whether the race detector is compiled in; the
// allocation gate skips under it because instrumentation shifts counts.
const raceEnabled = true
