package serve_test

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"algspec/internal/serve"
)

// -update regenerates the golden JSON bodies under testdata/.
var update = flag.Bool("update", false, "rewrite golden files")

// loopSrc diverges on spin(go): the only way out is fuel or deadline.
const loopSrc = `
spec Loop
  uses Bool
  ops
    go   : -> Loop
    spin : Loop -> Loop
  vars x : Loop
  axioms
    [spin] spin(x) = spin(x)
end
`

// goodCheckSrc is a tiny complete, consistent spec for /v1/check.
const goodCheckSrc = "spec Toggle\n  uses Bool\n  ops\n    off : -> Toggle\n    on : Toggle -> Toggle\n    lit? : Toggle -> Bool\n  vars t : Toggle\n  axioms\n    [l1] lit?(off) = false\n    [l2] lit?(on(t)) = true\nend\n"

// incompleteCheckSrc omits the f(up(...)) case, so the static and
// dynamic completeness checks must both flag it.
const incompleteCheckSrc = "spec Hole\n  uses Bool\n  ops\n    mk : -> Hole\n    up : Hole -> Hole\n    f : Hole -> Bool\n  vars x : Hole\n  axioms\n    [f1] f(mk) = true\nend\n"

func newTestServer(t testing.TB, cfg serve.Config, extra ...string) *httptest.Server {
	t.Helper()
	srv, err := serve.New(cfg, extra...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// newTestServerFrom mounts an already-built server whose lifecycle the
// test manages itself (the shutdown test closes it mid-test).
func newTestServerFrom(t testing.TB, srv *serve.Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(srv.Handler())
}

func do(t testing.TB, ts *httptest.Server, method, path, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("body differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestE2EEndpoints drives every endpoint through real HTTP: happy paths
// against the shipped Queue/Stack/Symboltable/Array specs, and each
// error path with its own status code and golden body.
func TestE2EEndpoints(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2, Timeout: 0}, loopSrc)
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		golden   string
	}{
		{
			name:     "normalize queue",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec":"Queue","term":"front(add(add(new, 'x), 'y))"}`,
			wantCode: 200,
			golden:   "normalize_queue.json",
		},
		{
			name:     "normalize stack",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec":"Stack","term":"isNewstack?(pop(push(newstack, empty)))"}`,
			wantCode: 200,
			golden:   "normalize_stack.json",
		},
		{
			name:     "normalize symboltable",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec":"Symboltable","term":"retrieve(add(init, 'i, 'a), 'i)"}`,
			wantCode: 200,
			golden:   "normalize_symboltable.json",
		},
		{
			name:     "normalize array",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec":"Array","term":"read(assign(assign(empty, 'i, 'a), 'j, 'b), 'i)"}`,
			wantCode: 200,
			golden:   "normalize_array.json",
		},
		{
			name:     "normalize with trace",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec":"Nat","term":"addN(succ(zero), zero)","trace":true}`,
			wantCode: 200,
			golden:   "normalize_trace.json",
		},
		{
			name:     "unknown spec is 404",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec":"Ghost","term":"x"}`,
			wantCode: 404,
			golden:   "normalize_unknown_spec.json",
		},
		{
			name:     "malformed term is 400 with position",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec":"Queue","term":"front(add(new,"}`,
			wantCode: 400,
			golden:   "normalize_bad_term.json",
		},
		{
			name:     "invalid JSON is 400",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec": Queue}`,
			wantCode: 400,
			golden:   "normalize_bad_json.json",
		},
		{
			name:     "fuel exhaustion is 422",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec":"Nat","term":"addN(succ(succ(succ(zero))), succ(zero))","fuel":2}`,
			wantCode: 422,
			golden:   "normalize_fuel.json",
		},
		{
			name:     "deadline is 504",
			method:   "POST",
			path:     "/v1/normalize",
			body:     `{"spec":"Loop","term":"spin(go)","timeout_ms":30}`,
			wantCode: 504,
			golden:   "normalize_deadline.json",
		},
		{
			name:     "check good spec",
			method:   "POST",
			path:     "/v1/check",
			body:     `{"source":` + jsonString(goodCheckSrc) + `,"depth":3}`,
			wantCode: 200,
			golden:   "check_good.json",
		},
		{
			name:     "check incomplete spec",
			method:   "POST",
			path:     "/v1/check",
			body:     `{"source":` + jsonString(incompleteCheckSrc) + `,"depth":3}`,
			wantCode: 200,
			golden:   "check_incomplete.json",
		},
		{
			name:     "check syntax error is 400 with position",
			method:   "POST",
			path:     "/v1/check",
			body:     `{"source":"spec Broken\n  ops\n    f : -> \nend\n"}`,
			wantCode: 400,
			golden:   "check_syntax_error.json",
		},
		{
			name:     "check empty source is 400",
			method:   "POST",
			path:     "/v1/check",
			body:     `{"source":"  "}`,
			wantCode: 400,
			golden:   "check_empty.json",
		},
		{
			name:     "specs listing",
			method:   "GET",
			path:     "/v1/specs",
			body:     "",
			wantCode: 200,
			golden:   "specs.json",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, ts, tc.method, tc.path, tc.body)
			if code != tc.wantCode {
				t.Fatalf("status = %d, want %d; body:\n%s", code, tc.wantCode, body)
			}
			checkGolden(t, tc.golden, body)
		})
	}
}

// TestE2ECacheWarm pins the hit path: the second identical request is
// answered from the cache, flagged cached:true, with the cold run's
// step count echoed unchanged.
func TestE2ECacheWarm(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})
	body := `{"spec":"Queue","term":"front(remove(add(add(add(new, 'a), 'b), 'c)))"}`
	code, cold := do(t, ts, "POST", "/v1/normalize", body)
	if code != 200 {
		t.Fatalf("cold status = %d: %s", code, cold)
	}
	checkGolden(t, "normalize_cold.json", cold)
	code, warm := do(t, ts, "POST", "/v1/normalize", body)
	if code != 200 {
		t.Fatalf("warm status = %d: %s", code, warm)
	}
	checkGolden(t, "normalize_warm.json", warm)
	// A differently spelled but structurally equal term shares the
	// interned pointer, so it hits the same entry.
	code, respelled := do(t, ts, "POST", "/v1/normalize",
		`{"spec":"Queue","term":"front( remove( add( add( add( new, 'a ), 'b ), 'c ) ) )"}`)
	if code != 200 || !strings.Contains(respelled, `"cached": true`) {
		t.Errorf("respelled term missed the cache: %d %s", code, respelled)
	}
}

// TestE2EMethodsAndMetrics covers routing errors and the metrics page's
// shape (its counters move, so no golden — substring pins only).
func TestE2EMethodsAndMetrics(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})
	if code, _ := do(t, ts, "GET", "/v1/normalize", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/normalize = %d, want 405", code)
	}
	if code, _ := do(t, ts, "POST", "/metrics", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", code)
	}
	if code, _ := do(t, ts, "GET", "/v1/nope", ""); code != http.StatusNotFound {
		t.Errorf("GET /v1/nope = %d, want 404", code)
	}

	if code, _ := do(t, ts, "POST", "/v1/normalize",
		`{"spec":"Queue","term":"isEmpty?(new)"}`); code != 200 {
		t.Fatalf("normalize = %d", code)
	}
	code, page := do(t, ts, "GET", "/metrics", "")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		`adt_requests_total{endpoint="normalize",code="200"} 1`,
		"adt_in_flight 0",
		"adt_cache_hits_total 0",
		"adt_cache_misses_total 1",
		"adt_engine_steps_total",
		"adt_engine_rule_fires_total",
		// The default serve configuration runs on the compiled tier, so
		// the one normalize above must land there and nothing may fall
		// back to the interpreter.
		"adt_engine_compiled_evals_total 1",
		"adt_engine_interp_evals_total 0",
		"adt_interned_terms",
		`adt_request_duration_seconds_count{endpoint="normalize"} 1`,
		`adt_request_duration_seconds_bucket{endpoint="normalize",le="+Inf"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q:\n%s", want, page)
		}
	}
}

// jsonString quotes a Go string as a JSON string literal.
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
