// Package serve exposes the specification toolchain as a long-running
// HTTP/JSON service — the "specification as oracle" of Gaudel & Le
// Gall, run as infrastructure. A client POSTs a spec name and a term;
// the server normalizes the term against Guttag's axioms and answers
// with the normal form, the reduction count, and (opt-in) the full
// rewrite trace. The four checkers run on uploaded specs, the spec
// library is listable, and every engine counter from the rewrite layer
// is scraped at GET /metrics in the Prometheus text format.
//
// Concurrency discipline (DESIGN §10): one immutable compiled
// rewrite.System per spec is shared by reference; every request
// normalizes on its own Fork carrying per-request fuel, a cancellation
// flag wired to the request deadline, and (for trace requests) a
// private trace collector. Forks never share memo tables or counters —
// the only shared mutable state is the sharded LRU normal-form cache,
// which exchanges immutable entries under shard locks, and the atomic
// stats recorder the forks drain into.
package serve

import (
	"net/http"
	"runtime"
	"time"

	"algspec/internal/core"
	"algspec/internal/rewrite"
	"algspec/internal/speclib"
)

// Config sizes the server. The zero value of each field selects the
// documented default.
type Config struct {
	// Workers bounds concurrent normalizations (<= 0: GOMAXPROCS).
	Workers int
	// Fuel is the per-request reduction budget and the cap on any
	// request-supplied budget (<= 0: 1<<20, the engine default).
	Fuel int
	// CacheSize bounds the shared normal-form cache in entries
	// (0: DefaultCacheSize; negative: cache disabled).
	CacheSize int
	// Timeout is the per-request wall-clock deadline (0: none). A
	// request may ask for a shorter deadline, never a longer one.
	Timeout time.Duration
}

// DefaultCacheSize is the normal-form cache bound when Config leaves
// CacheSize zero.
const DefaultCacheSize = 1 << 16

// Server is the spec-evaluation service. Create with New, mount
// Handler on an http.Server, and Close on the way out.
type Server struct {
	cfg     Config
	env     *core.Env
	sources []string // lib + extras, for rebuilding check environments
	cache   *nfCache
	parsed  *parseCache
	met     *metrics
	rec     rewrite.StatsRecorder
	pool    *pool
	mux     *http.ServeMux
}

// New builds a server over the embedded specification library plus any
// extra specification sources (each one full source text, as a file's
// contents). Every spec is compiled eagerly so a bad source fails here,
// not on the first request that touches it.
func New(cfg Config, extraSources ...string) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Fuel <= 0 {
		cfg.Fuel = 1 << 20
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	sources := append(append([]string{}, speclib.Sources...), extraSources...)
	env := core.NewEnv()
	for _, src := range sources {
		if _, err := env.Load(src); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:     cfg,
		env:     env,
		sources: sources,
		cache:   newNFCache(cfg.CacheSize),
		parsed:  newParseCache(cfg.CacheSize),
		met:     newMetrics(),
	}
	for _, name := range env.Names() {
		if _, err := env.System(name); err != nil {
			return nil, err
		}
	}
	s.pool = newPool(cfg.Workers, &s.rec)
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/normalize", s.instrument("normalize", s.handleNormalize))
	s.mux.Handle("POST /v1/check", s.instrument("check", s.handleCheck))
	s.mux.Handle("GET /v1/specs", s.instrument("specs", s.handleSpecs))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree; mount it on an http.Server or
// an httptest.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool: queued and running normalizations
// finish (or hit their fuel/stop bounds) before Close returns. Call it
// after http.Server.Shutdown has stopped new requests.
func (s *Server) Close() { s.pool.close() }

// instrument wraps an API handler with the in-flight gauge, the
// per-(endpoint, code) request counter and the latency histogram.
// /metrics itself is served unwrapped so the gauge a scrape reports
// does not count the scrape.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)
		start := time.Now()
		if rule, ok := fpHandlerDelay.Fire(); ok {
			// Injected stall inside the measured window, so it shows up
			// in the latency histogram exactly like a real one.
			time.Sleep(rule.Delay)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.met.observe(endpoint, sw.code, time.Since(start).Seconds())
	})
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
