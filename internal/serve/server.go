// Package serve exposes the specification toolchain as a long-running
// HTTP/JSON service — the "specification as oracle" of Gaudel & Le
// Gall, run as infrastructure. A client POSTs a spec name and a term;
// the server normalizes the term against Guttag's axioms and answers
// with the normal form, the reduction count, and (opt-in) the full
// rewrite trace. Specifications are held in a content-addressed
// registry: POST /v1/specs mints an immutable version id for an
// uploaded source, and normalize requests may pin any version. The
// four checkers run on uploaded specs, the spec library is listable,
// and every engine counter from the rewrite layer is scraped at
// GET /metrics in the Prometheus text format.
//
// Concurrency discipline (DESIGN §10): one immutable compiled
// rewrite.System per spec is shared by reference; every request
// normalizes on its own Fork carrying per-request fuel, a cancellation
// flag wired to the request deadline, and (for trace requests) a
// private trace collector. Forks never share memo tables or counters —
// the only shared mutable state is the sharded LRU normal-form cache,
// which exchanges immutable entries under shard locks, and the atomic
// stats recorder the forks drain into.
//
// Durability (DESIGN §13): with Config.PersistDir set, uploaded specs
// and every cold normalization are persisted (snapshot + WAL, integrity
// digested), and a restarted server reloads them at boot so its first
// request is served from the warm cache.
package serve

import (
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"algspec/internal/core"
	"algspec/internal/corpus"
	"algspec/internal/registry"
	"algspec/internal/rewrite"
	"algspec/internal/sig"
	"algspec/internal/speclib"
)

// Config sizes the server. The zero value of each field selects the
// documented default.
type Config struct {
	// Workers bounds concurrent normalizations (<= 0: GOMAXPROCS).
	Workers int
	// Fuel is the per-request reduction budget and the cap on any
	// request-supplied budget (<= 0: 1<<20, the engine default).
	Fuel int
	// CacheSize bounds the shared normal-form cache in entries
	// (0: DefaultCacheSize; negative: cache disabled).
	CacheSize int
	// Timeout is the per-request wall-clock deadline (0: none). A
	// request may ask for a shorter deadline, never a longer one.
	Timeout time.Duration
	// PersistDir, when non-empty, enables durability: uploaded spec
	// sources and normal-form entries are written under this directory
	// and reloaded at the next boot. Corrupt files are rejected (with
	// the adt_persist_errors_total counter raised) and the server falls
	// back to a cold start.
	PersistDir string
	// SnapshotEvery is the period of the background snapshot that folds
	// the WAL into nf.snapshot (0: DefaultSnapshotEvery). Only
	// meaningful with PersistDir; a final snapshot is always taken on
	// Close.
	SnapshotEvery time.Duration
	// Warm, when true, pre-normalizes the golden-conformance battery
	// (the corpus mirrored in specs/golden/) into the normal-form cache
	// at boot, so even a server without a persisted store answers its
	// first corpus request warm.
	Warm bool
}

// DefaultCacheSize is the normal-form cache bound when Config leaves
// CacheSize zero.
const DefaultCacheSize = 1 << 16

// DefaultSnapshotEvery is the background snapshot period when Config
// leaves SnapshotEvery zero.
const DefaultSnapshotEvery = 30 * time.Second

// Server is the spec-evaluation service. Create with New, mount
// Handler on an http.Server, and Close on the way out.
type Server struct {
	cfg     Config
	reg     *registry.Registry
	env     *core.Env // the base version's environment
	sources []string  // lib + extras, for rebuilding check environments
	cache   *nfCache
	parsed  *parseCache
	pers    *persister
	met     *metrics
	rec     rewrite.StatsRecorder
	pool    *pool
	conf    *conformState
	mux     *http.ServeMux

	// certifiedBase counts the base-library specs carrying a confluence
	// certificate (the adt_confluence_certified gauge); crossHits counts
	// cache hits served to a different strategy than the one that
	// computed the entry — possible only on certified specs, where the
	// normal form is strategy-independent by theorem.
	certifiedBase int64
	crossHits     atomic.Int64

	snapStop chan struct{}
	snapWG   sync.WaitGroup
	closeMu  sync.Mutex
	closed   bool
}

// New builds a server over the embedded specification library plus any
// extra specification sources (each one full source text, as a file's
// contents). Every spec is compiled eagerly so a bad source fails here,
// not on the first request that touches it.
func New(cfg Config, extraSources ...string) (*Server, error) {
	return NewWithSources(cfg, append(append([]string{}, speclib.Sources...), extraSources...))
}

// NewWithSources builds a server over exactly the given specification
// sources, with no implied library. Production servers go through New;
// this entry point exists for the runpack regression tests, which
// simulate a binary whose embedded library changed (a perturbed axiom)
// and assert that `adt regress` detects the behavioral drift.
func NewWithSources(cfg Config, sources []string) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Fuel <= 0 {
		cfg.Fuel = 1 << 20
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	reg, err := registry.New(sources)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		env:     reg.Base().Env,
		sources: sources,
		cache:   newNFCache(cfg.CacheSize),
		parsed:  newParseCache(cfg.CacheSize),
		met:     newMetrics(),
	}
	if cfg.PersistDir != "" {
		persistCap := cfg.CacheSize
		if persistCap <= 0 {
			persistCap = DefaultCacheSize
		}
		s.pers, err = newPersister(cfg.PersistDir, persistCap)
		if err != nil {
			return nil, err
		}
		s.loadPersisted()
	}
	if cfg.Warm {
		s.warmFromCorpus()
	}
	// Completing the base library at boot (cheap: the certificates are
	// cached on the version) makes the certified set a boot-time fact —
	// the first strategy-mixed request never pays for completion, and
	// the adt_confluence_certified gauge is stable from the first
	// scrape.
	for _, name := range reg.Base().Specs {
		if reg.Base().Certified(name) {
			s.certifiedBase++
		}
	}
	s.pool = newPool(cfg.Workers, &s.rec)
	s.conf = newConformState()
	s.mux = http.NewServeMux()
	s.mux.Handle("POST /v1/normalize", s.instrument("normalize", s.handleNormalize))
	s.mux.Handle("POST /v1/check", s.instrument("check", s.handleCheck))
	s.mux.Handle("POST /v1/conform", s.instrument("conform", s.handleConform))
	s.mux.Handle("POST /v1/specs", s.instrument("upload", s.handleSpecUpload))
	s.mux.Handle("GET /v1/specs", s.instrument("specs", s.handleSpecs))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.pers != nil {
		s.snapStop = make(chan struct{})
		s.snapWG.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// loadPersisted restores the durable state: re-registers every uploaded
// spec source, then replays the snapshot+WAL into the normal-form
// cache. Failures never abort boot — a corrupt store means a cold
// start, counted in adt_persist_errors_total — because the persisted
// cache is an accelerator, not a source of truth.
func (s *Server) loadPersisted() {
	srcs, errs := loadSpecSources(s.cfg.PersistDir)
	s.pers.persistErrs.Add(int64(len(errs)))
	for _, src := range srcs {
		if _, _, err := s.reg.Register(src); err != nil {
			s.pers.persistErrs.Add(1)
		}
	}
	recs, err := loadNFStore(s.cfg.PersistDir)
	if err != nil {
		s.pers.persistErrs.Add(1)
		return
	}
	s.pers.seed(recs)
	for _, rec := range recs {
		ver, ok := s.reg.Resolve(rec.Version)
		if !ok || rec.Version == "" {
			// An entry written by a server with a different base library
			// (or a lost upload): its terms may not even parse here.
			s.pers.staleSkipped.Add(1)
			continue
		}
		sys, err := ver.Env.System(rec.Spec)
		if err != nil {
			s.pers.staleSkipped.Add(1)
			continue
		}
		in, err := ver.Env.ParseTermAs(rec.Spec, rec.Term, sig.Sort(rec.Sort))
		if err != nil {
			s.pers.persistErrs.Add(1)
			continue
		}
		nf, err := ver.Env.ParseTermAs(rec.Spec, rec.NF, sig.Sort(rec.Sort))
		if err != nil {
			s.pers.persistErrs.Add(1)
			continue
		}
		canon := sys.Interner().Canon(in)
		// Persisted entries reload into the shared partition: only
		// shared-keyed results are ever written to the WAL, so this
		// round-trips exactly.
		s.cache.Put(nfKey{t: canon, strat: stratShared}, cacheEntry{nf: sys.Interner().Canon(nf), steps: rec.Steps})
		s.parsed.Put(ver.ID+"\x00"+rec.Spec+"\x00"+rec.Term, canon)
		s.pers.warmLoaded.Add(1)
	}
}

// warmFromCorpus normalizes the golden-conformance battery into the
// cache at boot. Entries are computed on plain forks (real step counts,
// no pool, no stats recorder — request metrics stay exact) and fed to
// the persister like any cold result, so the warmth is durable too.
func (s *Server) warmFromCorpus() {
	base := s.reg.Base()
	for _, name := range corpus.BatterySpecs() {
		sys, err := base.Env.System(name)
		if err != nil {
			continue
		}
		for _, src := range corpus.Battery(name) {
			t, err := base.Env.ParseTerm(name, src)
			if err != nil {
				continue
			}
			canon := sys.Interner().Canon(t)
			f := sys.Fork(rewrite.WithMaxSteps(s.cfg.Fuel))
			nf, err := f.Normalize(canon)
			if err != nil {
				continue
			}
			steps := f.Stats().Steps
			s.cache.Put(nfKey{t: canon, strat: stratShared}, cacheEntry{nf: nf, steps: steps})
			s.parsed.Put(base.ID+"\x00"+name+"\x00"+src, canon)
			s.pers.append(walRecord{
				Version: base.ID, Spec: name, Sort: string(canon.Sort),
				Term: canon.String(), NF: nf.String(), Steps: steps,
			})
			if s.pers != nil {
				s.pers.warmLoaded.Add(1)
			}
		}
	}
}

// snapshotLoop periodically folds the WAL into a fresh snapshot so a
// crash replays a short log, not the whole history.
func (s *Server) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.pers.snapshot(); err != nil {
				s.pers.persistErrs.Add(1)
			}
		case <-s.snapStop:
			return
		}
	}
}

// Handler returns the HTTP handler tree; mount it on an http.Server or
// an httptest.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the content-addressed spec registry (the cluster
// router reads version ids through it).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Close drains the worker pool — queued and running normalizations
// finish (or hit their fuel/stop bounds) — then stops the snapshotter
// and writes a final snapshot. Call it after http.Server.Shutdown has
// stopped new requests. Close is idempotent.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	s.pool.close()
	if s.pers != nil {
		close(s.snapStop)
		s.snapWG.Wait()
		s.pers.close()
	}
}

// instrument wraps an API handler with the in-flight gauge, the
// per-(endpoint, code) request counter and the latency histogram.
// /metrics itself is served unwrapped so the gauge a scrape reports
// does not count the scrape.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)
		start := time.Now()
		if rule, ok := fpHandlerDelay.Fire(); ok {
			// Injected stall inside the measured window, so it shows up
			// in the latency histogram exactly like a real one.
			time.Sleep(rule.Delay)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.met.observe(endpoint, sw.code, time.Since(start).Seconds())
	})
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
