package serve_test

import (
	"strings"
	"sync"
	"testing"

	"algspec/internal/serve"
)

// TestGracefulShutdownDrains pins the drain contract: requests that
// entered before Close complete normally, and Close returns only after
// every worker has exited. The httptest server is shut down first
// (mirroring http.Server.Shutdown before pool drain in cmdServe).
func TestGracefulShutdownDrains(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerFrom(t, srv)

	const n = 16
	var wg sync.WaitGroup
	bodies := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = do(t, ts, "POST", "/v1/normalize",
				`{"spec":"Queue","term":"front(remove(add(add(add(new, 'a), 'b), 'c)))"}`)
		}(i)
	}
	wg.Wait() // all requests answered while the server was up
	ts.Close()
	srv.Close() // must not deadlock with an empty queue
	for i := 0; i < n; i++ {
		if codes[i] != 200 || !strings.Contains(bodies[i], `"normal_form": "'b"`) {
			t.Errorf("request %d: %d %s", i, codes[i], bodies[i])
		}
	}
	// Close is idempotent.
	srv.Close()
}
