package serve_test

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"algspec/internal/serve"
	"algspec/internal/speclib"
)

// soakTerms is an overlapping workload: every goroutine draws from the
// same small set, so the cache sees heavy sharing and every entry is
// both written and read concurrently.
func soakTerms() []string {
	base := []string{
		"front(add(add(new, 'a), 'b))",
		"front(remove(add(add(add(new, 'a), 'b), 'c)))",
		"isEmpty?(remove(add(new, 'x)))",
		"front(add(new, 'z))",
		"isEmpty?(new)",
	}
	// Deepen the set so misses are not trivially cheap.
	for i := 0; i < 5; i++ {
		t := "new"
		for j := 0; j <= i+3; j++ {
			t = fmt.Sprintf("add(%s, '%c)", t, 'a'+byte(j))
		}
		base = append(base, "front(remove("+t+"))")
	}
	return base
}

// metricValue extracts one sample's value from a Prometheus text page.
func metricValue(t *testing.T, page, sample string) int64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(sample) + " ([0-9]+)$")
	m := re.FindStringSubmatch(page)
	if m == nil {
		t.Fatalf("metrics page has no sample %q:\n%s", sample, page)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSoakConcurrentNormalize hammers /v1/normalize from many
// goroutines with overlapping terms and then audits the system end to
// end: every response must equal the sequential normalization of its
// term, and the /metrics counters must reconcile exactly with the
// request count — requests = cache hits + cache misses, with no lost
// updates. Run under -race in CI, this is the PR's concurrency
// acceptance test.
func TestSoakConcurrentNormalize(t *testing.T) {
	const goroutines = 8
	const rounds = 5 // each goroutine sends every term this many times

	terms := soakTerms()
	// Sequential ground truth from an independent environment.
	want := make(map[string]string, len(terms))
	env := speclib.BaseEnv()
	for _, src := range terms {
		nf, err := env.Eval("Queue", src)
		if err != nil {
			t.Fatalf("sequential %s: %v", src, err)
		}
		want[src] = nf.String()
	}

	ts := newTestServer(t, serve.Config{Workers: 4})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range terms {
					// Stagger the order per goroutine so overlapping
					// requests race on different entries.
					src := terms[(i+g)%len(terms)]
					code, body := do(t, ts, "POST", "/v1/normalize",
						`{"spec":"Queue","term":`+jsonString(src)+`}`)
					if code != 200 {
						errs <- fmt.Errorf("%s: status %d: %s", src, code, body)
						return
					}
					wantNF := `"normal_form": ` + jsonString(want[src])
					if !strings.Contains(body, wantNF) {
						errs <- fmt.Errorf("%s: response diverged from sequential normalization:\n%s\n(want %s)", src, body, wantNF)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	total := int64(goroutines * rounds * len(terms))
	code, page := do(t, ts, "GET", "/metrics", "")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	served := metricValue(t, page, `adt_requests_total{endpoint="normalize",code="200"}`)
	hits := metricValue(t, page, "adt_cache_hits_total")
	misses := metricValue(t, page, "adt_cache_misses_total")
	if served != total {
		t.Errorf("requests_total = %d, want %d (lost request updates)", served, total)
	}
	if hits+misses != total {
		t.Errorf("cache hits %d + misses %d = %d, want %d (lost cache updates)", hits, misses, hits+misses, total)
	}
	// Each distinct term misses at least once; concurrent first
	// requests may each miss, but never more often than one per
	// (goroutine, term) pair.
	if misses < int64(len(terms)) || misses > int64(goroutines*len(terms)) {
		t.Errorf("misses = %d, want between %d and %d", misses, len(terms), goroutines*len(terms))
	}
	if got := metricValue(t, page, "adt_in_flight"); got != 0 {
		t.Errorf("in_flight = %d after the soak, want 0", got)
	}
	if steps := metricValue(t, page, "adt_engine_steps_total"); steps <= 0 {
		t.Errorf("engine steps = %d, want > 0", steps)
	}
	hist := metricValue(t, page, `adt_request_duration_seconds_count{endpoint="normalize"}`)
	if hist != total {
		t.Errorf("latency observations = %d, want %d", hist, total)
	}
}

// TestSoakSharedTraceAndCache interleaves traced (cache-bypassing) and
// plain requests to the same term, ensuring the two paths agree and
// trace requests never pollute cache accounting.
func TestSoakSharedTraceAndCache(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 4})
	const src = "front(remove(add(add(add(new, 'a), 'b), 'c)))"
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(traced bool) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body := `{"spec":"Queue","term":` + jsonString(src) + `,"trace":` + strconv.FormatBool(traced) + `}`
				code, resp := do(t, ts, "POST", "/v1/normalize", body)
				if code != 200 || !strings.Contains(resp, `"normal_form": "'b"`) {
					t.Errorf("traced=%v: %d %s", traced, code, resp)
					return
				}
			}
		}(g%2 == 0)
	}
	wg.Wait()
	_, page := do(t, ts, "GET", "/metrics", "")
	hits := metricValue(t, page, "adt_cache_hits_total")
	misses := metricValue(t, page, "adt_cache_misses_total")
	// 30 plain requests consulted the cache; 30 traced ones bypassed it.
	if hits+misses != 30 {
		t.Errorf("hits %d + misses %d = %d, want 30 (traced requests must bypass the cache)", hits, misses, hits+misses)
	}
}
