package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"algspec/internal/serve"
)

// uncertifiableSrc is terminating in practice but carries an axiom no
// reduction order of the completion pass can orient ([q2]: po and qo
// are mutually recursive, and the arguments are identical), so
// completion refuses a certificate — the fixture for "no cross-strategy
// sharing without proof", the situation the certificate gate exists
// for: plausible-but-unproven.
const uncertifiableSrc = `
spec UPick
  uses Bool
  ops
    ua : -> UPick
    ub : UPick -> UPick
    po : UPick -> Bool
    qo : UPick -> Bool
  vars
    x : UPick
  axioms
    [p1] po(ua) = true
    [p2] po(ub(x)) = qo(x)
    [q1] qo(ua) = false
    [q2] qo(ub(x)) = po(ub(x))
end
`

// scrapeMetric fetches /metrics and extracts one sample.
func scrapeMetric(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	code, body := do(t, ts, "GET", "/metrics", "")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	return metricValue(t, body, name)
}

func normalizeStrat(t *testing.T, ts *httptest.Server, spec, version, tm, strategy string) serve.NormalizeResponse {
	t.Helper()
	req := serve.NormalizeRequest{Spec: spec, Version: version, Term: tm, Strategy: strategy}
	b, _ := json.Marshal(req)
	code, body := do(t, ts, "POST", "/v1/normalize", string(b))
	if code != 200 {
		t.Fatalf("normalize %s %q strategy=%q: %d %s", spec, tm, strategy, code, body)
	}
	var resp serve.NormalizeResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestCrossStrategyCacheSharing: on a certified base spec, an innermost
// cold run's entry answers the outermost request for the same term —
// counted by adt_cache_cross_strategy_hits_total — and vice versa. On
// an uncertified uploaded spec the partitions stay disjoint and the
// counter never moves.
func TestCrossStrategyCacheSharing(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 2})

	if n := scrapeMetric(t, ts, "adt_confluence_certified"); n < 10 {
		t.Fatalf("adt_confluence_certified = %d, want at least 10 of the library certified", n)
	}

	// Queue is certified: cold innermost, then outermost must hit the
	// shared entry.
	tm := "front(add(add(new, 'a), 'b))"
	cold := normalizeStrat(t, ts, "Queue", "", tm, "innermost")
	if cold.Cached {
		t.Fatal("first request reported cached")
	}
	warm := normalizeStrat(t, ts, "Queue", "", tm, "outermost")
	if !warm.Cached {
		t.Fatal("outermost request missed the certified shared cache")
	}
	if warm.NormalForm != cold.NormalForm {
		t.Fatalf("cross-strategy NF mismatch: %s vs %s", warm.NormalForm, cold.NormalForm)
	}
	if n := scrapeMetric(t, ts, "adt_cache_cross_strategy_hits_total"); n != 1 {
		t.Fatalf("adt_cache_cross_strategy_hits_total = %d after one cross hit", n)
	}

	// The reverse direction: outermost pays the cold run, innermost
	// shares it.
	tm2 := "front(add(add(new, 'b), 'a))"
	if r := normalizeStrat(t, ts, "Queue", "", tm2, "outermost"); r.Cached {
		t.Fatal("fresh outermost term reported cached")
	}
	if r := normalizeStrat(t, ts, "Queue", "", tm2, "innermost"); !r.Cached {
		t.Fatal("innermost request missed the entry outermost computed")
	}
	if n := scrapeMetric(t, ts, "adt_cache_cross_strategy_hits_total"); n != 2 {
		t.Fatalf("adt_cache_cross_strategy_hits_total = %d after two cross hits", n)
	}

	// A same-strategy repeat is a plain hit, not a cross hit.
	normalizeStrat(t, ts, "Queue", "", tm, "innermost")
	if n := scrapeMetric(t, ts, "adt_cache_cross_strategy_hits_total"); n != 2 {
		t.Fatalf("same-strategy hit moved the cross counter to %d", n)
	}

	// Upload the uncertifiable spec; its strategies must not share.
	b, _ := json.Marshal(map[string]string{"source": uncertifiableSrc})
	code, body := do(t, ts, "POST", "/v1/specs", string(b))
	if code != 201 {
		t.Fatalf("upload: %d %s", code, body)
	}
	var up serve.SpecUploadResponse
	if err := json.Unmarshal([]byte(body), &up); err != nil {
		t.Fatal(err)
	}
	utm := "po(ub(ub(ua)))"
	if r := normalizeStrat(t, ts, "UPick", up.Version, utm, "innermost"); r.Cached {
		t.Fatal("fresh uncertified term reported cached")
	}
	if r := normalizeStrat(t, ts, "UPick", up.Version, utm, "outermost"); r.Cached {
		t.Fatal("uncertified outermost request hit the innermost entry")
	}
	// Each partition now warm — repeats hit, same-strategy only.
	if r := normalizeStrat(t, ts, "UPick", up.Version, utm, "outermost"); !r.Cached {
		t.Fatal("uncertified outermost repeat missed its own partition")
	}
	if n := scrapeMetric(t, ts, "adt_cache_cross_strategy_hits_total"); n != 2 {
		t.Fatalf("uncertified spec moved the cross counter to %d", n)
	}

	// BoundedQueue is the library's own uncertified spec: its
	// partitions must stay disjoint too.
	btm := "sizeq(addq(addq(emptyq, 'a), 'b))"
	if r := normalizeStrat(t, ts, "BoundedQueue", "", btm, "innermost"); r.Cached {
		t.Fatal("fresh BoundedQueue term reported cached")
	}
	if r := normalizeStrat(t, ts, "BoundedQueue", "", btm, "outermost"); r.Cached {
		t.Fatal("uncertified BoundedQueue outermost request shared the innermost entry")
	}
	if n := scrapeMetric(t, ts, "adt_cache_cross_strategy_hits_total"); n != 2 {
		t.Fatalf("BoundedQueue moved the cross counter to %d", n)
	}

	// An unknown strategy is a 400, not a silent default.
	breq, _ := json.Marshal(serve.NormalizeRequest{Spec: "Queue", Term: "new", Strategy: "leftmost"})
	if code, _ := do(t, ts, "POST", "/v1/normalize", string(breq)); code != 400 {
		t.Fatalf("unknown strategy: %d, want 400", code)
	}
}

// TestCrossStrategySoak hammers one certified spec with both strategies
// from many goroutines (the race detector watches the shared cache and
// the cross counter) and then reconciles /metrics exactly: every
// normalize request is either a cache hit or a miss, and cross hits
// never exceed total hits.
func TestCrossStrategySoak(t *testing.T) {
	ts := newTestServer(t, serve.Config{Workers: 4})

	terms := make([]string, 8)
	for i := range terms {
		q := "new"
		for j := 0; j <= i; j++ {
			it := "'a"
			if (i+j)%2 == 1 {
				it = "'b"
			}
			q = fmt.Sprintf("add(%s, %s)", q, it)
		}
		terms[i] = fmt.Sprintf("front(%s)", q)
	}

	hits0, _ := scrapeMetric(t, ts, "adt_cache_hits_total"), scrapeMetric(t, ts, "adt_cache_misses_total")
	cross0 := scrapeMetric(t, ts, "adt_cache_cross_strategy_hits_total")

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	nfs := map[string]string{}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				strat := "innermost"
				if (g+i)%2 == 1 {
					strat = "outermost"
				}
				tm := terms[(g*perWorker+i)%len(terms)]
				r := normalizeStrat(t, ts, "Queue", "", tm, strat)
				mu.Lock()
				if prev, ok := nfs[tm]; ok && prev != r.NormalForm {
					t.Errorf("%s: NF %s under %s, previously %s", tm, r.NormalForm, strat, prev)
				}
				nfs[tm] = r.NormalForm
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	hits := scrapeMetric(t, ts, "adt_cache_hits_total") - hits0
	misses := scrapeMetric(t, ts, "adt_cache_misses_total")
	cross := scrapeMetric(t, ts, "adt_cache_cross_strategy_hits_total") - cross0
	if got := hits + misses; got < workers*perWorker {
		// Every request asked the cache exactly once; boot-time warmth
		// contributes misses but never subtracts.
		t.Errorf("cache hits %d + misses %d < %d requests", hits, misses, workers*perWorker)
	}
	if cross == 0 {
		t.Error("strategy-mixed soak on a certified spec produced no cross-strategy hits")
	}
	if cross > hits {
		t.Errorf("cross-strategy hits %d exceed total hits %d", cross, hits)
	}
}
