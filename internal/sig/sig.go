// Package sig implements the syntactic half of an algebraic specification:
// sorts and operation signatures. In Guttag's terminology this is the
// "syntactic specification" of an abstract data type — the names, domains,
// and ranges of the operations associated with the type (CACM 20(6) §2).
//
// A Signature owns a set of sorts and a set of operations over those sorts.
// Sorts come in three flavours:
//
//   - ordinary sorts, introduced by a specification (e.g. Queue, Stack);
//   - parameter sorts, standing for "a type schema rather than a single
//     type" (§3) — e.g. Item in Queue-of-Items;
//   - atom sorts, whose values are an open-ended supply of literal
//     constants written 'x (e.g. Identifier). Atom sorts let the engine
//     decide equality of identifiers natively, playing the role of the
//     paper's independently defined IS_SAME? operation.
//
// Signatures are merged when one specification "uses" another, mirroring
// the paper's layering (Symboltable uses Identifier and Attributelist;
// its representation uses Stack and Array).
package sig

import (
	"fmt"
	"sort"
	"strings"
)

// Sort names a carrier set of the heterogeneous algebra (Birkhoff & Lipson).
type Sort string

// BoolSort is the distinguished boolean sort. Operations whose range is
// BoolSort are the observers used by the completeness and consistency
// checkers (IS_EMPTY?, IS_INBLOCK?, ...).
const BoolSort Sort = "Bool"

// Operation describes one operation of the type: its name and its
// functionality Domain -> Range. Nullary operations (empty Domain) are the
// constants of the algebra (NEW, NEWSTACK, EMPTY, INIT).
type Operation struct {
	Name   string
	Domain []Sort
	Range  Sort
	// Owner is the specification that declared the operation. It is
	// carried so error messages and the CLI can attribute operations
	// after signatures have been merged.
	Owner string
	// Native marks an operation whose meaning is supplied by the engine
	// rather than by axioms (atom equality, atom hashing). Such
	// operations are exempt from sufficient-completeness case analysis.
	Native bool
}

// Arity returns the number of arguments the operation takes.
func (o *Operation) Arity() int { return len(o.Domain) }

// IsConstant reports whether the operation is nullary.
func (o *Operation) IsConstant() bool { return len(o.Domain) == 0 }

// String renders the operation in the paper's arrow notation,
// e.g. "add : Queue, Item -> Queue".
func (o *Operation) String() string {
	if len(o.Domain) == 0 {
		return fmt.Sprintf("%s : -> %s", o.Name, o.Range)
	}
	parts := make([]string, len(o.Domain))
	for i, d := range o.Domain {
		parts[i] = string(d)
	}
	return fmt.Sprintf("%s : %s -> %s", o.Name, strings.Join(parts, ", "), o.Range)
}

// Signature is a set of sorts plus a set of operations over them.
// The zero value is not usable; call New.
type Signature struct {
	name      string
	sorts     map[Sort]bool
	params    map[Sort]bool
	atomSorts map[Sort]bool
	ops       map[string]*Operation
	order     []string // op names in declaration order
	sortOrder []Sort   // sorts in declaration order
}

// New returns an empty signature owned by the named specification.
func New(name string) *Signature {
	return &Signature{
		name:      name,
		sorts:     make(map[Sort]bool),
		params:    make(map[Sort]bool),
		atomSorts: make(map[Sort]bool),
		ops:       make(map[string]*Operation),
	}
}

// Name returns the owning specification's name.
func (s *Signature) Name() string { return s.name }

// AddSort introduces an ordinary sort. Adding a sort twice is an error so
// that merged signatures surface accidental collisions.
func (s *Signature) AddSort(name Sort) error {
	if name == "" {
		return fmt.Errorf("sig: empty sort name")
	}
	if s.sorts[name] {
		return fmt.Errorf("sig: sort %s declared twice", name)
	}
	s.sorts[name] = true
	s.sortOrder = append(s.sortOrder, name)
	return nil
}

// AddParam introduces a parameter sort (a free "type variable" of the
// specification schema, like Item in Queue-of-Items).
func (s *Signature) AddParam(name Sort) error {
	if err := s.AddSort(name); err != nil {
		return err
	}
	s.params[name] = true
	return nil
}

// AddAtomSort introduces a sort whose values are atom literals ('x, 'y, ...).
func (s *Signature) AddAtomSort(name Sort) error {
	if err := s.AddSort(name); err != nil {
		return err
	}
	s.atomSorts[name] = true
	return nil
}

// MarkAtomSort flags an existing sort as atom-bearing.
func (s *Signature) MarkAtomSort(name Sort) error {
	if !s.sorts[name] {
		return fmt.Errorf("sig: cannot mark unknown sort %s as atoms", name)
	}
	s.atomSorts[name] = true
	return nil
}

// HasSort reports whether the sort is known to the signature.
func (s *Signature) HasSort(name Sort) bool { return s.sorts[name] }

// IsParam reports whether the sort is a parameter sort.
func (s *Signature) IsParam(name Sort) bool { return s.params[name] }

// IsAtomSort reports whether the sort admits atom literals.
func (s *Signature) IsAtomSort(name Sort) bool { return s.atomSorts[name] }

// Sorts returns all sorts in declaration order.
func (s *Signature) Sorts() []Sort {
	out := make([]Sort, len(s.sortOrder))
	copy(out, s.sortOrder)
	return out
}

// AtomSorts returns the atom-bearing sorts in declaration order.
func (s *Signature) AtomSorts() []Sort {
	var out []Sort
	for _, so := range s.sortOrder {
		if s.atomSorts[so] {
			out = append(out, so)
		}
	}
	return out
}

// Declare adds an operation to the signature. Every domain sort and the
// range sort must already be present. Operation names are unique within a
// signature (the paper never overloads names).
func (s *Signature) Declare(op *Operation) error {
	if op.Name == "" {
		return fmt.Errorf("sig: operation with empty name")
	}
	if _, dup := s.ops[op.Name]; dup {
		return fmt.Errorf("sig: operation %s declared twice", op.Name)
	}
	for _, d := range op.Domain {
		if !s.sorts[d] {
			return fmt.Errorf("sig: operation %s: unknown domain sort %s", op.Name, d)
		}
	}
	if !s.sorts[op.Range] {
		return fmt.Errorf("sig: operation %s: unknown range sort %s", op.Name, op.Range)
	}
	if op.Owner == "" {
		op.Owner = s.name
	}
	cp := *op
	cp.Domain = append([]Sort(nil), op.Domain...)
	s.ops[op.Name] = &cp
	s.order = append(s.order, op.Name)
	return nil
}

// Op looks up an operation by name.
func (s *Signature) Op(name string) (*Operation, bool) {
	op, ok := s.ops[name]
	return op, ok
}

// MustOp looks up an operation and panics if it is absent. It is intended
// for code paths that have already validated the name (e.g. speclib).
func (s *Signature) MustOp(name string) *Operation {
	op, ok := s.ops[name]
	if !ok {
		panic(fmt.Sprintf("sig: unknown operation %s in signature %s", name, s.name))
	}
	return op
}

// Ops returns all operations in declaration order.
func (s *Signature) Ops() []*Operation {
	out := make([]*Operation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.ops[n])
	}
	return out
}

// OpsWithRange returns the operations whose range is the given sort, in
// declaration order. These are the candidate constructors of the sort.
func (s *Signature) OpsWithRange(so Sort) []*Operation {
	var out []*Operation
	for _, n := range s.order {
		if s.ops[n].Range == so {
			out = append(out, s.ops[n])
		}
	}
	return out
}

// OpsTaking returns the operations with at least one domain position of the
// given sort, in declaration order. These are the contexts the
// observational-equivalence checker can wrap a value of the sort in.
func (s *Signature) OpsTaking(so Sort) []*Operation {
	var out []*Operation
	for _, n := range s.order {
		for _, d := range s.ops[n].Domain {
			if d == so {
				out = append(out, s.ops[n])
				break
			}
		}
	}
	return out
}

// Merge copies every sort and operation of other into s. Sorts present in
// both are tolerated only if their flavour (param/atom) agrees; duplicate
// operation names must refer to the identical functionality. Merging is how
// a specification absorbs the signatures of the specifications it uses.
func (s *Signature) Merge(other *Signature) error {
	for _, so := range other.sortOrder {
		if s.sorts[so] {
			if s.params[so] != other.params[so] {
				return fmt.Errorf("sig: merge %s into %s: sort %s is a parameter in one signature but not the other", other.name, s.name, so)
			}
			if other.atomSorts[so] {
				s.atomSorts[so] = true
			}
			continue
		}
		s.sorts[so] = true
		s.sortOrder = append(s.sortOrder, so)
		if other.params[so] {
			s.params[so] = true
		}
		if other.atomSorts[so] {
			s.atomSorts[so] = true
		}
	}
	for _, n := range other.order {
		op := other.ops[n]
		if have, ok := s.ops[n]; ok {
			if !sameFunctionality(have, op) {
				return fmt.Errorf("sig: merge %s into %s: operation %s declared with different functionality (%s vs %s)", other.name, s.name, n, have, op)
			}
			continue
		}
		cp := *op
		cp.Domain = append([]Sort(nil), op.Domain...)
		s.ops[n] = &cp
		s.order = append(s.order, n)
	}
	return nil
}

func sameFunctionality(a, b *Operation) bool {
	if a.Range != b.Range || len(a.Domain) != len(b.Domain) {
		return false
	}
	for i := range a.Domain {
		if a.Domain[i] != b.Domain[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the signature.
func (s *Signature) Clone() *Signature {
	out := New(s.name)
	out.sortOrder = append([]Sort(nil), s.sortOrder...)
	for k, v := range s.sorts {
		out.sorts[k] = v
	}
	for k, v := range s.params {
		out.params[k] = v
	}
	for k, v := range s.atomSorts {
		out.atomSorts[k] = v
	}
	for _, n := range s.order {
		op := s.ops[n]
		cp := *op
		cp.Domain = append([]Sort(nil), op.Domain...)
		out.ops[n] = &cp
	}
	out.order = append([]string(nil), s.order...)
	return out
}

// Validate performs whole-signature sanity checks: every operation's sorts
// exist, and every non-parameter, non-atom sort is inhabited by at least
// one constant or by an operation that can bottom out (so ground-term
// generation terminates).
func (s *Signature) Validate() error {
	for _, n := range s.order {
		op := s.ops[n]
		for _, d := range op.Domain {
			if !s.sorts[d] {
				return fmt.Errorf("sig: %s: operation %s references unknown sort %s", s.name, n, d)
			}
		}
		if !s.sorts[op.Range] {
			return fmt.Errorf("sig: %s: operation %s has unknown range sort %s", s.name, n, op.Range)
		}
	}
	inhabited := s.inhabitedSorts()
	for _, so := range s.sortOrder {
		if s.params[so] || s.atomSorts[so] {
			continue
		}
		if !inhabited[so] {
			return fmt.Errorf("sig: %s: sort %s has no finite ground terms (no constant reachable)", s.name, so)
		}
	}
	return nil
}

// inhabitedSorts computes the least fixed point of "this sort has a finite
// ground term": parameter and atom sorts are inhabited by assumption;
// otherwise a sort is inhabited once some operation with that range has all
// domain sorts inhabited.
func (s *Signature) inhabitedSorts() map[Sort]bool {
	inhabited := make(map[Sort]bool)
	for so := range s.params {
		inhabited[so] = true
	}
	for so := range s.atomSorts {
		inhabited[so] = true
	}
	for changed := true; changed; {
		changed = false
		for _, n := range s.order {
			op := s.ops[n]
			if inhabited[op.Range] {
				continue
			}
			ok := true
			for _, d := range op.Domain {
				if !inhabited[d] {
					ok = false
					break
				}
			}
			if ok {
				inhabited[op.Range] = true
				changed = true
			}
		}
	}
	return inhabited
}

// String renders the whole signature, sorts first then operations, in a
// stable order suitable for golden tests and the CLI's info subcommand.
func (s *Signature) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "signature %s\n", s.name)
	sorts := s.Sorts()
	sort.Slice(sorts, func(i, j int) bool { return sorts[i] < sorts[j] })
	for _, so := range sorts {
		switch {
		case s.params[so]:
			fmt.Fprintf(&b, "  param %s\n", so)
		case s.atomSorts[so]:
			fmt.Fprintf(&b, "  atoms %s\n", so)
		default:
			fmt.Fprintf(&b, "  sort  %s\n", so)
		}
	}
	for _, op := range s.Ops() {
		fmt.Fprintf(&b, "  op    %s\n", op)
	}
	return b.String()
}
