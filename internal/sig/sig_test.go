package sig

import (
	"strings"
	"testing"
)

func mustSig(t *testing.T) *Signature {
	t.Helper()
	s := New("Queue")
	if err := s.AddSort("Bool"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSort("Queue"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddParam("Item"); err != nil {
		t.Fatal(err)
	}
	ops := []*Operation{
		{Name: "new", Range: "Queue"},
		{Name: "add", Domain: []Sort{"Queue", "Item"}, Range: "Queue"},
		{Name: "front", Domain: []Sort{"Queue"}, Range: "Item"},
		{Name: "isEmpty?", Domain: []Sort{"Queue"}, Range: "Bool"},
		{Name: "true", Range: "Bool"},
	}
	for _, op := range ops {
		if err := s.Declare(op); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestDeclareAndLookup(t *testing.T) {
	s := mustSig(t)
	op, ok := s.Op("add")
	if !ok {
		t.Fatal("add not found")
	}
	if op.Arity() != 2 || op.Range != "Queue" {
		t.Errorf("add = %v", op)
	}
	if op.IsConstant() {
		t.Error("add should not be constant")
	}
	c, _ := s.Op("new")
	if !c.IsConstant() {
		t.Error("new should be constant")
	}
	if _, ok := s.Op("missing"); ok {
		t.Error("missing found")
	}
	if op.Owner != "Queue" {
		t.Errorf("owner = %q, want Queue", op.Owner)
	}
}

func TestDeclareErrors(t *testing.T) {
	s := mustSig(t)
	cases := []struct {
		name string
		op   *Operation
	}{
		{"duplicate", &Operation{Name: "new", Range: "Queue"}},
		{"unknown domain", &Operation{Name: "x", Domain: []Sort{"Nope"}, Range: "Queue"}},
		{"unknown range", &Operation{Name: "y", Range: "Nope"}},
		{"empty name", &Operation{Name: "", Range: "Queue"}},
	}
	for _, c := range cases {
		if err := s.Declare(c.op); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestSortFlavours(t *testing.T) {
	s := New("S")
	if err := s.AddAtomSort("Identifier"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddParam("Item"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSort("Plain"); err != nil {
		t.Fatal(err)
	}
	if !s.IsAtomSort("Identifier") || s.IsParam("Identifier") {
		t.Error("Identifier flavour wrong")
	}
	if !s.IsParam("Item") || s.IsAtomSort("Item") {
		t.Error("Item flavour wrong")
	}
	if s.IsParam("Plain") || s.IsAtomSort("Plain") {
		t.Error("Plain flavour wrong")
	}
	if err := s.AddSort("Plain"); err == nil {
		t.Error("duplicate sort accepted")
	}
	if err := s.MarkAtomSort("Plain"); err != nil {
		t.Fatal(err)
	}
	if !s.IsAtomSort("Plain") {
		t.Error("MarkAtomSort did not take")
	}
	if err := s.MarkAtomSort("Nope"); err == nil {
		t.Error("MarkAtomSort on unknown sort accepted")
	}
	atoms := s.AtomSorts()
	if len(atoms) != 2 {
		t.Errorf("AtomSorts = %v", atoms)
	}
}

func TestOpsQueries(t *testing.T) {
	s := mustSig(t)
	if got := len(s.Ops()); got != 5 {
		t.Errorf("Ops len = %d", got)
	}
	withQ := s.OpsWithRange("Queue")
	if len(withQ) != 2 || withQ[0].Name != "new" || withQ[1].Name != "add" {
		t.Errorf("OpsWithRange(Queue) = %v", withQ)
	}
	taking := s.OpsTaking("Queue")
	if len(taking) != 3 {
		t.Errorf("OpsTaking(Queue) = %v", taking)
	}
	// Declaration order is preserved.
	names := make([]string, 0)
	for _, op := range s.Ops() {
		names = append(names, op.Name)
	}
	want := "new add front isEmpty? true"
	if strings.Join(names, " ") != want {
		t.Errorf("order = %v", names)
	}
}

func TestMerge(t *testing.T) {
	base := New("Bool")
	if err := base.AddSort("Bool"); err != nil {
		t.Fatal(err)
	}
	if err := base.Declare(&Operation{Name: "true", Range: "Bool"}); err != nil {
		t.Fatal(err)
	}

	s := New("Queue")
	if err := s.Merge(base); err != nil {
		t.Fatal(err)
	}
	if !s.HasSort("Bool") {
		t.Error("merge lost Bool")
	}
	if op, ok := s.Op("true"); !ok || op.Owner != "Bool" {
		t.Error("merge lost true or its owner")
	}
	// Re-merging is idempotent.
	if err := s.Merge(base); err != nil {
		t.Fatal(err)
	}
	// Conflicting functionality is rejected.
	bad := New("Evil")
	if err := bad.AddSort("Bool"); err != nil {
		t.Fatal(err)
	}
	if err := bad.AddSort("Other"); err != nil {
		t.Fatal(err)
	}
	if err := bad.Declare(&Operation{Name: "true", Range: "Other"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(bad); err == nil {
		t.Error("conflicting merge accepted")
	}
	// Param flavour conflicts are rejected.
	p := New("P")
	if err := p.AddParam("Bool"); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(p); err == nil {
		t.Error("param flavour conflict accepted")
	}
}

func TestClone(t *testing.T) {
	s := mustSig(t)
	c := s.Clone()
	if err := c.Declare(&Operation{Name: "extra", Range: "Queue"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Op("extra"); ok {
		t.Error("clone shares op table with original")
	}
	if _, ok := c.Op("add"); !ok {
		t.Error("clone lost add")
	}
}

func TestValidate(t *testing.T) {
	s := mustSig(t)
	if err := s.Validate(); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
	// A sort with no reachable constant fails validation.
	bad := New("Bad")
	if err := bad.AddSort("Loop"); err != nil {
		t.Fatal(err)
	}
	if err := bad.Declare(&Operation{Name: "spin", Domain: []Sort{"Loop"}, Range: "Loop"}); err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil {
		t.Error("uninhabited sort accepted")
	}
	// Parameter sorts are inhabited by assumption.
	ok := New("OK")
	if err := ok.AddParam("Item"); err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("param-only signature rejected: %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	s := mustSig(t)
	out := s.String()
	for _, want := range []string{"signature Queue", "param Item", "add : Queue, Item -> Queue", "new : -> Queue"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
	op := s.MustOp("front")
	if op.String() != "front : Queue -> Item" {
		t.Errorf("op String = %q", op.String())
	}
}

func TestMustOpPanics(t *testing.T) {
	s := mustSig(t)
	defer func() {
		if recover() == nil {
			t.Error("MustOp on unknown did not panic")
		}
	}()
	s.MustOp("nope")
}
