package spec

import (
	"fmt"

	"algspec/internal/sig"
	"algspec/internal/term"
)

// Instantiate realizes the paper's observation that a parameterized
// specification "may be viewed as defining a type schema rather than a
// single type" (§3): it produces a new specification from a schema by
// binding parameter sorts to concrete sorts of a host signature.
//
// host supplies the definitions of the binding targets (e.g. the
// Identifier spec when binding Item := Identifier); its signature and
// axioms are merged into the result. rename maps each of the schema's
// own operation and sort names into the instance's namespace — it must
// be injective on the names it changes and is applied to the schema's
// principal and auxiliary sorts as well, so several instances of one
// schema can coexist in an environment. Passing nil keeps all names,
// which is fine for a single instance.
func Instantiate(schema *Spec, instanceName string, bindings map[sig.Sort]sig.Sort, host *Spec, rename func(string) string) (*Spec, error) {
	if rename == nil {
		rename = func(s string) string { return s }
	}
	for p := range bindings {
		if !schema.Sig.IsParam(p) {
			return nil, fmt.Errorf("spec: instantiate %s: %s is not a parameter sort", schema.Name, p)
		}
	}
	for _, so := range schema.Sig.Sorts() {
		if schema.Sig.IsParam(so) {
			if _, ok := bindings[so]; !ok {
				return nil, fmt.Errorf("spec: instantiate %s: parameter %s left unbound", schema.Name, so)
			}
		}
	}
	if host == nil {
		return nil, fmt.Errorf("spec: instantiate %s: nil host", schema.Name)
	}
	for _, target := range bindings {
		if !host.Sig.HasSort(target) {
			return nil, fmt.Errorf("spec: instantiate %s: host %s has no sort %s", schema.Name, host.Name, target)
		}
	}

	// Sort mapping: parameters go to their bindings; the schema's own
	// non-parameter sorts are renamed; everything inherited (Bool and
	// other used specs' sorts) keeps its name whether or not the host
	// happens to supply it.
	ownSort := map[sig.Sort]bool{}
	for _, so := range schema.OwnSorts {
		ownSort[so] = true
	}
	mapSort := func(so sig.Sort) sig.Sort {
		if t, ok := bindings[so]; ok {
			return t
		}
		if ownSort[so] {
			return sig.Sort(rename(string(so)))
		}
		return so
	}

	out := &Spec{Name: instanceName, Sig: sig.New(instanceName)}
	if err := out.Sig.Merge(host.Sig); err != nil {
		return nil, err
	}
	// Schema sorts not provided by the host.
	for _, so := range schema.Sig.Sorts() {
		m := mapSort(so)
		if out.Sig.HasSort(m) {
			continue
		}
		if schema.Sig.IsAtomSort(so) {
			if err := out.Sig.AddAtomSort(m); err != nil {
				return nil, err
			}
			continue
		}
		if err := out.Sig.AddSort(m); err != nil {
			return nil, err
		}
	}
	// Schema operations not provided by the host. Only the schema's own
	// operations are renamed; inherited ones (Bool's true, not, ...)
	// keep their names so the engine's built-in boolean handling and
	// any shared vocabulary continue to line up.
	own := map[string]bool{}
	for _, n := range schema.OwnOps {
		own[n] = true
	}
	opName := map[string]string{}
	for _, op := range schema.Sig.Ops() {
		if _, fromHost := host.Sig.Op(op.Name); fromHost {
			opName[op.Name] = op.Name
			continue
		}
		n := op.Name
		if own[op.Name] {
			n = rename(op.Name)
		}
		if prev, dup := out.Sig.Op(n); dup {
			return nil, fmt.Errorf("spec: instantiate %s: renamed operation %s collides with %s", schema.Name, n, prev)
		}
		dom := make([]sig.Sort, len(op.Domain))
		for i, d := range op.Domain {
			dom[i] = mapSort(d)
		}
		if err := out.Sig.Declare(&sig.Operation{
			Name:   n,
			Domain: dom,
			Range:  mapSort(op.Range),
			Owner:  instanceName,
			Native: op.Native,
		}); err != nil {
			return nil, err
		}
		opName[op.Name] = n
		if own[op.Name] {
			out.OwnOps = append(out.OwnOps, n)
		}
	}
	for _, so := range schema.OwnSorts {
		if _, bound := bindings[so]; !bound {
			out.OwnSorts = append(out.OwnSorts, mapSort(so))
		}
	}

	// Axioms: host's, then the schema's translated.
	seen := map[string]bool{}
	for _, a := range host.All {
		key := a.Owner + "\x00" + a.Label
		if !seen[key] {
			seen[key] = true
			out.All = append(out.All, a)
		}
	}
	translate := func(t *term.Term) *term.Term { return mapTerm(t, mapSort, opName) }
	for _, a := range schema.All {
		key := a.Owner + "\x00" + a.Label
		if seen[key] {
			continue
		}
		if _, fromHost := hostAxiom(host, a); fromHost {
			continue
		}
		seen[key] = true
		na := &Axiom{
			Label: a.Label,
			Owner: instanceName,
			LHS:   translate(a.LHS),
			RHS:   translate(a.RHS),
		}
		out.All = append(out.All, na)
		out.Own = append(out.Own, na)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("spec: instantiate %s: %w", schema.Name, err)
	}
	return out, nil
}

// hostAxiom reports whether the host already carries the axiom (shared
// dependency like Bool).
func hostAxiom(host *Spec, a *Axiom) (*Axiom, bool) {
	for _, h := range host.All {
		if h.Owner == a.Owner && h.Label == a.Label {
			return h, true
		}
	}
	return nil, false
}

// mapTerm rewrites sorts and operation names through the instantiation.
func mapTerm(t *term.Term, mapSort func(sig.Sort) sig.Sort, opName map[string]string) *term.Term {
	switch t.Kind {
	case term.Var:
		return term.NewVar(t.Sym, mapSort(t.Sort))
	case term.Atom:
		return term.NewAtom(t.Sym, mapSort(t.Sort))
	case term.Err:
		return term.NewErr(mapSort(t.Sort))
	}
	args := make([]*term.Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = mapTerm(a, mapSort, opName)
	}
	if t.IsIf() {
		out := term.NewIf(args[0], args[1], args[2])
		out.Sort = mapSort(t.Sort)
		return out
	}
	name := t.Sym
	if n, ok := opName[name]; ok {
		name = n
	}
	return term.NewOp(name, mapSort(t.Sort), args...)
}
