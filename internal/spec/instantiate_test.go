package spec_test

import (
	"strings"
	"testing"

	"algspec/internal/complete"
	"algspec/internal/core"
	"algspec/internal/rewrite"
	"algspec/internal/sig"
	"algspec/internal/spec"
	"algspec/internal/speclib"
	"algspec/internal/term"
)

// idQueue instantiates the Queue schema with Item := Identifier, renaming
// the schema's names into an IQ namespace.
func idQueue(t *testing.T) (*core.Env, *spec.Spec) {
	t.Helper()
	env := speclib.BaseEnv()
	inst, err := spec.Instantiate(
		env.MustGet("Queue"),
		"IdQueue",
		map[sig.Sort]sig.Sort{"Item": "Identifier"},
		env.MustGet("Identifier"),
		func(name string) string {
			if name == "Queue" {
				return "IdQueue"
			}
			return name + "IQ"
		})
	if err != nil {
		t.Fatal(err)
	}
	return env, inst
}

func TestInstantiateSignature(t *testing.T) {
	_, inst := idQueue(t)
	if !inst.Sig.HasSort("IdQueue") || inst.Sig.HasSort("Queue") || inst.Sig.HasSort("Item") {
		t.Error("sort mapping wrong")
	}
	add, ok := inst.Sig.Op("addIQ")
	if !ok {
		t.Fatal("addIQ missing")
	}
	if add.Domain[0] != "IdQueue" || add.Domain[1] != "Identifier" || add.Range != "IdQueue" {
		t.Errorf("addIQ = %v", add)
	}
	// The host's native equality is present and still native.
	same, ok := inst.Sig.Op("same?")
	if !ok || !same.Native {
		t.Error("host's same? missing or not native")
	}
	// Axioms were translated: six own axioms with IQ names.
	if len(inst.Own) != 6 {
		t.Fatalf("own axioms = %d", len(inst.Own))
	}
	if !strings.Contains(inst.Own[3].String(), "frontIQ(addIQ(q, i))") {
		t.Errorf("axiom 4 = %s", inst.Own[3])
	}
}

func TestInstantiatedQueueEvaluates(t *testing.T) {
	env, inst := idQueue(t)
	if err := env.Add(inst); err != nil {
		t.Fatal(err)
	}
	// Identifiers are the items now — the single atom sort in scope.
	got := env.MustEval("IdQueue", "frontIQ(removeIQ(addIQ(addIQ(newIQ, 'x), 'y)))")
	if got.String() != "'y" {
		t.Errorf("eval = %s", got)
	}
	if !env.MustEval("IdQueue", "removeIQ(newIQ)").IsErr() {
		t.Error("boundary condition lost in instantiation")
	}
}

func TestInstanceIsSufficientlyComplete(t *testing.T) {
	_, inst := idQueue(t)
	if r := complete.Check(inst); !r.OK() {
		t.Errorf("instance incomplete: %s", r)
	}
	sys := rewrite.New(inst)
	tm := term.NewOp("isEmpty?IQ", sig.BoolSort, term.NewOp("newIQ", "IdQueue"))
	if nf := sys.MustNormalize(tm); !nf.IsTrue() {
		t.Errorf("isEmpty?IQ(newIQ) = %s", nf)
	}
}

func TestTwoInstancesCoexist(t *testing.T) {
	env := speclib.BaseEnv()
	schema := env.MustGet("Queue")
	mk := func(name, suffix string, target sig.Sort, host *spec.Spec) *spec.Spec {
		t.Helper()
		inst, err := spec.Instantiate(schema, name,
			map[sig.Sort]sig.Sort{"Item": target}, host,
			func(n string) string {
				if n == "Queue" {
					return name
				}
				return n + suffix
			})
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	q1 := mk("IdQueue", "IQ", "Identifier", env.MustGet("Identifier"))
	q2 := mk("AttrQueue", "AQ", "Attrs", env.MustGet("Attrs"))
	if err := env.Add(q1); err != nil {
		t.Fatal(err)
	}
	if err := env.Add(q2); err != nil {
		t.Fatal(err)
	}
	if got := env.MustEval("AttrQueue", "frontAQ(addAQ(newAQ, 'a1))"); got.String() != "'a1" {
		t.Errorf("AttrQueue eval = %s", got)
	}
}

func TestInstantiateErrors(t *testing.T) {
	env := speclib.BaseEnv()
	schema := env.MustGet("Queue")
	host := env.MustGet("Identifier")

	// Unbound parameter.
	if _, err := spec.Instantiate(schema, "X", map[sig.Sort]sig.Sort{}, host, nil); err == nil ||
		!strings.Contains(err.Error(), "left unbound") {
		t.Errorf("unbound: %v", err)
	}
	// Binding a non-parameter.
	if _, err := spec.Instantiate(schema, "X",
		map[sig.Sort]sig.Sort{"Item": "Identifier", "Queue": "Identifier"}, host, nil); err == nil ||
		!strings.Contains(err.Error(), "not a parameter") {
		t.Errorf("non-param: %v", err)
	}
	// Unknown target sort.
	if _, err := spec.Instantiate(schema, "X",
		map[sig.Sort]sig.Sort{"Item": "Ghost"}, host, nil); err == nil ||
		!strings.Contains(err.Error(), "no sort Ghost") {
		t.Errorf("unknown target: %v", err)
	}
	// Nil host.
	if _, err := spec.Instantiate(schema, "X",
		map[sig.Sort]sig.Sort{"Item": "Identifier"}, nil, nil); err == nil {
		t.Error("nil host accepted")
	}
	// Renaming collision: everything maps to one name.
	if _, err := spec.Instantiate(schema, "X",
		map[sig.Sort]sig.Sort{"Item": "Identifier"}, host,
		func(string) string { return "clash" }); err == nil {
		t.Error("colliding rename accepted")
	}
}
