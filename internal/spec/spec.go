// Package spec defines the checked specification model: a flattened
// signature plus labelled axioms. A Spec is what the paper calls an
// algebraic specification — "two pairs: a syntactic specification and a
// set of relations" (CACM 20(6) §2) — after semantic analysis has resolved
// uses, variables and sorts.
package spec

import (
	"fmt"
	"sort"
	"strings"

	"algspec/internal/sig"
	"algspec/internal/term"
)

// Axiom is one relation LHS = RHS over the signature. The LHS is always an
// operation application whose head is the operation the axiom helps
// define; variables occurring in the RHS also occur in the LHS.
type Axiom struct {
	// Label identifies the axiom in reports ("Q1", "3", ...). Labels are
	// unique within a spec; unlabelled axioms get ordinal labels.
	Label string
	// Owner is the name of the spec that stated the axiom (axioms are
	// inherited through uses).
	Owner string
	LHS   *term.Term
	RHS   *term.Term
}

// Head returns the operation name the axiom defines (the head of its LHS).
func (a *Axiom) Head() string { return a.LHS.Sym }

// String renders the axiom as "[label] lhs = rhs".
func (a *Axiom) String() string {
	if a.Label != "" {
		return fmt.Sprintf("[%s] %s = %s", a.Label, a.LHS, a.RHS)
	}
	return fmt.Sprintf("%s = %s", a.LHS, a.RHS)
}

// Spec is a checked specification.
type Spec struct {
	// Name is the specification's name; by convention it is also its
	// principal sort (the type of interest), when such a sort exists.
	Name string
	// Sig is the flattened signature: this spec's sorts and operations
	// plus those of every spec it (transitively) uses.
	Sig *sig.Signature
	// OwnOps lists the names of operations declared by this spec itself,
	// in declaration order.
	OwnOps []string
	// OwnSorts lists the sorts introduced by this spec itself (principal,
	// parameter, atom and auxiliary sorts), as opposed to those inherited
	// through uses. Instantiate renames exactly these.
	OwnSorts []sig.Sort
	// Own are the axioms stated by this spec, in source order.
	Own []*Axiom
	// All are Own plus the axioms inherited from used specs. Inherited
	// axioms come first, in dependency order, so rule priority within
	// one spec matches source order.
	All []*Axiom
	// Uses lists directly used spec names, in source order.
	Uses []string
}

// PrincipalSort returns the sort named after the spec if the signature has
// one, and "" otherwise (pure collections of operations are legal).
func (s *Spec) PrincipalSort() (sig.Sort, bool) {
	ps := sig.Sort(s.Name)
	if s.Sig.HasSort(ps) {
		return ps, true
	}
	return "", false
}

// AxiomsFor returns all axioms (inherited and own) whose head is the named
// operation, in rule-priority order.
func (s *Spec) AxiomsFor(op string) []*Axiom {
	var out []*Axiom
	for _, a := range s.All {
		if a.Head() == op {
			out = append(out, a)
		}
	}
	return out
}

// AxiomByLabel finds an own axiom by label.
func (s *Spec) AxiomByLabel(label string) (*Axiom, bool) {
	for _, a := range s.Own {
		if a.Label == label {
			return a, true
		}
	}
	return nil, false
}

// Constructors returns the constructor operations of the given sort: the
// operations with that range that never appear as the head of any axiom.
// In Guttag's development these are the operations in terms of which all
// values of the type can be written (NEW and ADD for Queue; the
// completeness check is "every extension applied to every constructor form
// is covered"). Native operations are never constructors.
func (s *Spec) Constructors(so sig.Sort) []*sig.Operation {
	heads := s.headSet()
	var out []*sig.Operation
	for _, op := range s.Sig.OpsWithRange(so) {
		if heads[op.Name] || op.Native {
			continue
		}
		out = append(out, op)
	}
	return out
}

// Extensions returns the non-constructor operations with the given range
// or taking the given sort as an argument — the operations whose meaning
// the axioms must pin down on all constructor forms.
func (s *Spec) Extensions() []*sig.Operation {
	heads := s.headSet()
	var out []*sig.Operation
	for _, op := range s.Sig.Ops() {
		if heads[op.Name] && !op.Native {
			out = append(out, op)
		}
	}
	return out
}

// IsConstructor reports whether the named operation is a constructor
// (heads no axiom and is not native).
func (s *Spec) IsConstructor(op string) bool {
	o, ok := s.Sig.Op(op)
	if !ok || o.Native {
		return false
	}
	return !s.headSet()[op]
}

func (s *Spec) headSet() map[string]bool {
	heads := make(map[string]bool, len(s.All))
	for _, a := range s.All {
		heads[a.Head()] = true
	}
	return heads
}

// OwnOperations returns this spec's own operation declarations in order.
func (s *Spec) OwnOperations() []*sig.Operation {
	out := make([]*sig.Operation, 0, len(s.OwnOps))
	for _, n := range s.OwnOps {
		if op, ok := s.Sig.Op(n); ok {
			out = append(out, op)
		}
	}
	return out
}

// Validate performs internal consistency checks on the assembled spec.
// Semantic analysis establishes these properties; Validate exists so that
// programmatically built specs (speclib, tests) get the same guarantees.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: empty name")
	}
	if s.Sig == nil {
		return fmt.Errorf("spec %s: nil signature", s.Name)
	}
	if err := s.Sig.Validate(); err != nil {
		return fmt.Errorf("spec %s: %v", s.Name, err)
	}
	labels := make(map[string]bool)
	for _, a := range s.Own {
		if a.Label != "" {
			if labels[a.Label] {
				return fmt.Errorf("spec %s: duplicate axiom label %q", s.Name, a.Label)
			}
			labels[a.Label] = true
		}
	}
	for _, a := range s.All {
		if err := s.validateAxiom(a); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spec) validateAxiom(a *Axiom) error {
	if a.LHS == nil || a.RHS == nil {
		return fmt.Errorf("spec %s: axiom %s: missing side", s.Name, a.Label)
	}
	if a.LHS.Kind != term.Op || a.LHS.IsIf() {
		return fmt.Errorf("spec %s: axiom %s: left-hand side must be an operation application, got %s", s.Name, a.Label, a.LHS)
	}
	if _, ok := s.Sig.Op(a.LHS.Sym); !ok {
		return fmt.Errorf("spec %s: axiom %s: unknown operation %s", s.Name, a.Label, a.LHS.Sym)
	}
	if a.LHS.Sort != a.RHS.Sort && a.RHS.Kind != term.Err {
		return fmt.Errorf("spec %s: axiom %s: sides have different sorts (%s vs %s)", s.Name, a.Label, a.LHS.Sort, a.RHS.Sort)
	}
	lhsVars := make(map[string]sig.Sort)
	for _, v := range a.LHS.Vars() {
		lhsVars[v.Sym] = v.Sort
	}
	for _, v := range a.RHS.Vars() {
		if _, ok := lhsVars[v.Sym]; !ok {
			return fmt.Errorf("spec %s: axiom %s: right-hand side variable %s does not occur on the left", s.Name, a.Label, v.Sym)
		}
	}
	var bad error
	check := func(t *term.Term) {
		t.Walk(func(u *term.Term) bool {
			if bad != nil {
				return false
			}
			if u.Kind == term.Op && !u.IsIf() {
				op, ok := s.Sig.Op(u.Sym)
				if !ok {
					bad = fmt.Errorf("spec %s: axiom %s: unknown operation %s", s.Name, a.Label, u.Sym)
					return false
				}
				if op.Arity() != len(u.Args) {
					bad = fmt.Errorf("spec %s: axiom %s: %s applied to %d arguments, wants %d", s.Name, a.Label, u.Sym, len(u.Args), op.Arity())
					return false
				}
			}
			return true
		})
	}
	check(a.LHS)
	check(a.RHS)
	return bad
}

// NonLeftLinearAxioms returns the own axioms whose LHS repeats a variable.
// The paper's axioms are all left-linear — repeated identifiers are
// compared with IS_SAME? instead — and the rewrite engine matches
// syntactically, so repeated pattern variables deserve a warning.
func (s *Spec) NonLeftLinearAxioms() []*Axiom {
	var out []*Axiom
	for _, a := range s.Own {
		seen := make(map[string]int)
		a.LHS.Walk(func(u *term.Term) bool {
			if u.Kind == term.Var {
				seen[u.Sym]++
			}
			return true
		})
		for _, n := range seen {
			if n > 1 {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// String renders the whole spec in (approximately) the surface syntax.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s\n", s.Name)
	if len(s.Uses) > 0 {
		fmt.Fprintf(&b, "  uses %s\n", strings.Join(s.Uses, ", "))
	}
	params := make([]string, 0)
	for _, so := range s.Sig.Sorts() {
		if s.Sig.IsParam(so) {
			params = append(params, string(so))
		}
	}
	sort.Strings(params)
	if len(params) > 0 {
		fmt.Fprintf(&b, "  param %s\n", strings.Join(params, ", "))
	}
	b.WriteString("  ops\n")
	for _, op := range s.OwnOperations() {
		fmt.Fprintf(&b, "    %s\n", op)
	}
	b.WriteString("  axioms\n")
	for _, a := range s.Own {
		fmt.Fprintf(&b, "    %s\n", a)
	}
	b.WriteString("end\n")
	return b.String()
}
