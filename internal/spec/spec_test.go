package spec_test

import (
	"strings"
	"testing"

	"algspec/internal/sig"
	"algspec/internal/spec"
	"algspec/internal/speclib"
	"algspec/internal/term"
)

func queue(t *testing.T) *spec.Spec {
	t.Helper()
	return speclib.BaseEnv().MustGet("Queue")
}

func TestConstructorsAndExtensions(t *testing.T) {
	sp := queue(t)
	ctors := sp.Constructors("Queue")
	if len(ctors) != 2 || ctors[0].Name != "new" || ctors[1].Name != "add" {
		t.Errorf("constructors = %v", ctors)
	}
	bctors := sp.Constructors(sig.BoolSort)
	if len(bctors) != 2 {
		t.Errorf("Bool constructors = %v", bctors)
	}
	if !sp.IsConstructor("new") || sp.IsConstructor("front") || sp.IsConstructor("nope") {
		t.Error("IsConstructor wrong")
	}
	exts := sp.Extensions()
	names := map[string]bool{}
	for _, e := range exts {
		names[e.Name] = true
	}
	for _, want := range []string{"front", "remove", "isEmpty?", "not", "and", "or"} {
		if !names[want] {
			t.Errorf("extension %s missing from %v", want, exts)
		}
	}
	// Native ops are never constructors.
	id := speclib.BaseEnv().MustGet("Identifier")
	if id.IsConstructor("same?") {
		t.Error("native same? classified as constructor")
	}
}

func TestAxiomsFor(t *testing.T) {
	sp := queue(t)
	axs := sp.AxiomsFor("front")
	if len(axs) != 2 {
		t.Fatalf("axioms for front = %d", len(axs))
	}
	if axs[0].Label != "3" || axs[1].Label != "4" {
		t.Errorf("labels = %s %s", axs[0].Label, axs[1].Label)
	}
	if axs[0].Head() != "front" {
		t.Errorf("head = %s", axs[0].Head())
	}
	if got := sp.AxiomsFor("new"); got != nil {
		t.Errorf("axioms for constructor = %v", got)
	}
	ax, ok := sp.AxiomByLabel("4")
	if !ok || ax.Head() != "front" {
		t.Errorf("AxiomByLabel = %v %v", ax, ok)
	}
	if _, ok := sp.AxiomByLabel("99"); ok {
		t.Error("AxiomByLabel found ghost")
	}
}

func TestValidateRejectsBadAxioms(t *testing.T) {
	sp := queue(t)
	base := *sp

	cases := []struct {
		name string
		ax   *spec.Axiom
		want string
	}{
		{
			"var lhs",
			&spec.Axiom{Label: "x", LHS: term.NewVar("q", "Queue"), RHS: term.NewOp("new", "Queue")},
			"operation application",
		},
		{
			"unknown op",
			&spec.Axiom{Label: "x", LHS: term.NewOp("ghost", "Queue"), RHS: term.NewOp("new", "Queue")},
			"unknown operation",
		},
		{
			"sort mismatch",
			&spec.Axiom{Label: "x", LHS: term.NewOp("front", "Item", term.NewVar("q", "Queue")), RHS: term.NewOp("new", "Queue")},
			"different sorts",
		},
		{
			"rhs var not in lhs",
			&spec.Axiom{Label: "x",
				LHS: term.NewOp("remove", "Queue", term.NewVar("q", "Queue")),
				RHS: term.NewVar("r", "Queue")},
			"does not occur",
		},
		{
			"arity",
			&spec.Axiom{Label: "x",
				LHS: term.NewOp("remove", "Queue", term.NewVar("q", "Queue")),
				RHS: term.NewOp("add", "Queue", term.NewVar("q", "Queue"))},
			"wants 2",
		},
	}
	for _, c := range cases {
		bad := base
		bad.Own = append(append([]*spec.Axiom(nil), base.Own...), c.ax)
		bad.All = append(append([]*spec.Axiom(nil), base.All...), c.ax)
		err := bad.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestValidateDuplicateLabels(t *testing.T) {
	sp := queue(t)
	bad := *sp
	dup := &spec.Axiom{Label: "1", Owner: "Queue",
		LHS: term.NewOp("remove", "Queue", term.NewVar("q", "Queue")),
		RHS: term.NewVar("q", "Queue")}
	bad.Own = append(append([]*spec.Axiom(nil), sp.Own...), dup)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate axiom label") {
		t.Errorf("err = %v", err)
	}
}

func TestNonLeftLinear(t *testing.T) {
	sp := queue(t)
	if got := sp.NonLeftLinearAxioms(); len(got) != 0 {
		t.Errorf("queue has non-left-linear axioms: %v", got)
	}
	mod := *sp
	nl := &spec.Axiom{Label: "nl", Owner: "Queue",
		LHS: term.NewOp("add", "Queue",
			term.NewOp("add", "Queue", term.NewVar("q", "Queue"), term.NewVar("i", "Item")),
			term.NewVar("i", "Item")),
		RHS: term.NewVar("q", "Queue")}
	mod.Own = append(append([]*spec.Axiom(nil), sp.Own...), nl)
	if got := mod.NonLeftLinearAxioms(); len(got) != 1 || got[0].Label != "nl" {
		t.Errorf("NonLeftLinear = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	sp := queue(t)
	out := sp.String()
	for _, want := range []string{"spec Queue", "uses Bool", "param Item", "[4] front(add(q, i))"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
	ax := sp.Own[0]
	if ax.String() != "[1] isEmpty?(new) = true" {
		t.Errorf("axiom String = %q", ax.String())
	}
}

func TestOwnOperations(t *testing.T) {
	sp := queue(t)
	ops := sp.OwnOperations()
	if len(ops) != 5 {
		t.Errorf("own ops = %d", len(ops))
	}
	if ops[0].Name != "new" {
		t.Errorf("first own op = %s", ops[0].Name)
	}
}

func TestPrincipalSortAbsent(t *testing.T) {
	sp := speclib.BaseEnv().MustGet("Attrs")
	if ps, ok := sp.PrincipalSort(); !ok || ps != "Attrs" {
		t.Errorf("Attrs principal = %v %v", ps, ok)
	}
}
