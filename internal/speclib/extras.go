package speclib

// This file extends the library beyond the paper's own examples with
// three classic algebraically-specified types in the same style. They
// exercise corners the paper's types do not: multiplicity (Bag), ordered
// recursion over a branching constructor (BST), and key shadowing with
// deletion (Map).

// Bag is a multiset of Elems: insertion order is unobservable, but
// multiplicity is.
const Bag = `
spec Bag
  uses Bool, Nat, Elem

  ops
    emptybag : -> Bag
    insertb  : Bag, Elem -> Bag
    countb   : Bag, Elem -> Nat
    deleteb  : Bag, Elem -> Bag
    memberB? : Bag, Elem -> Bool
    sizeb    : Bag -> Nat

  vars
    b    : Bag
    e, f : Elem

  axioms
    [c1] countb(emptybag, e) = zero
    [c2] countb(insertb(b, e), f) = if sameElem?(e, f) then succ(countb(b, f)) else countb(b, f)
    [d1] deleteb(emptybag, e) = emptybag
    [d2] deleteb(insertb(b, e), f) = if sameElem?(e, f) then b else insertb(deleteb(b, f), e)
    [m1] memberB?(b, e) = not(eqN(countb(b, e), zero))
    [s1] sizeb(emptybag) = zero
    [s2] sizeb(insertb(b, e)) = succ(sizeb(b))
end
`

// BST is a binary tree of Nats searched in order. node is a free
// constructor, so the carrier includes trees that violate the search
// property; the observers descend by comparison regardless, which any
// correct implementation must mirror exactly.
const BST = `
spec BST
  uses Bool, Nat

  ops
    emptyt    : -> BST
    node      : BST, Nat, BST -> BST
    insertT   : BST, Nat -> BST
    memberT?  : BST, Nat -> Bool
    isEmptyT? : BST -> Bool
    minT      : BST -> Nat
    sizeT     : BST -> Nat

  vars
    l, r : BST
    m, n : Nat

  axioms
    [i1] insertT(emptyt, n) = node(emptyt, n, emptyt)
    [i2] insertT(node(l, m, r), n) = if ltN(n, m) then node(insertT(l, n), m, r) else if ltN(m, n) then node(l, m, insertT(r, n)) else node(l, m, r)
    [m1] memberT?(emptyt, n) = false
    [m2] memberT?(node(l, m, r), n) = if ltN(n, m) then memberT?(l, n) else if ltN(m, n) then memberT?(r, n) else true
    [e1] isEmptyT?(emptyt) = true
    [e2] isEmptyT?(node(l, m, r)) = false
    [n1] minT(emptyt) = error
    [n2] minT(node(l, m, r)) = if isEmptyT?(l) then m else minT(l)
    [s1] sizeT(emptyt) = zero
    [s2] sizeT(node(l, m, r)) = succ(addN(sizeT(l), sizeT(r)))
end
`

// Map is a finite map from Elems to Elems with put/get/remove; a later
// put shadows an earlier one, and removeKey erases every binding of the
// key.
const Map = `
spec Map
  uses Bool, Nat, Elem

  ops
    emptymap  : -> Map
    put       : Map, Elem, Elem -> Map
    get       : Map, Elem -> Elem
    hasKey?   : Map, Elem -> Bool
    removeKey : Map, Elem -> Map
    sizeM     : Map -> Nat

  vars
    m       : Map
    k, j, v : Elem

  axioms
    [g1] get(emptymap, k) = error
    [g2] get(put(m, k, v), j) = if sameElem?(k, j) then v else get(m, j)
    [h1] hasKey?(emptymap, k) = false
    [h2] hasKey?(put(m, k, v), j) = if sameElem?(k, j) then true else hasKey?(m, j)
    [r1] removeKey(emptymap, k) = emptymap
    [r2] removeKey(put(m, k, v), j) = if sameElem?(k, j) then removeKey(m, j) else put(removeKey(m, j), k, v)
    [s1] sizeM(emptymap) = zero
    [s2] sizeM(put(m, k, v)) = if hasKey?(m, k) then sizeM(m) else succ(sizeM(m))
end
`
