// Package speclib contains the algebraic specifications from Guttag's
// paper, written in the framework's surface syntax, plus the support
// specifications they rest on. Axiom labels follow the paper's numbering
// where the paper numbers them (Queue 1–6, Symboltable 1–9, Stack 10–16,
// Array 17–20).
//
// BaseEnv loads the whole library in dependency order; individual sources
// are exported so tests can load selected layers or mutate axioms.
package speclib

import "algspec/internal/core"

// Bool is the boolean specification every other spec builds on. true and
// false are its constructors; not/and/or are extensions.
const Bool = `
spec Bool
  ops
    true  : -> Bool
    false : -> Bool
    not   : Bool -> Bool
    and   : Bool, Bool -> Bool
    or    : Bool, Bool -> Bool

  vars
    b : Bool

  axioms
    [not1] not(true) = false
    [not2] not(false) = true
    [and1] and(true, b) = b
    [and2] and(false, b) = false
    [or1]  or(true, b) = true
    [or2]  or(false, b) = b
end
`

// Nat is the Peano naturals used for sizes and bounds (the Bounded Queue's
// maximum length of three).
const Nat = `
spec Nat
  uses Bool

  ops
    zero : -> Nat
    succ : Nat -> Nat
    pred : Nat -> Nat
    addN : Nat, Nat -> Nat
    eqN  : Nat, Nat -> Bool
    ltN  : Nat, Nat -> Bool

  vars
    m, n : Nat

  axioms
    [pred1] pred(zero) = error
    [pred2] pred(succ(n)) = n
    [add1]  addN(zero, n) = n
    [add2]  addN(succ(m), n) = succ(addN(m, n))
    [eq1]   eqN(zero, zero) = true
    [eq2]   eqN(zero, succ(n)) = false
    [eq3]   eqN(succ(m), zero) = false
    [eq4]   eqN(succ(m), succ(n)) = eqN(m, n)
    [lt1]   ltN(m, zero) = false
    [lt2]   ltN(zero, succ(n)) = true
    [lt3]   ltN(succ(m), succ(n)) = ltN(m, n)
end
`

// Identifier is the paper's independently defined type Identifier with the
// native equality IS_SAME? ("SAME? is part of the specification of an
// independently defined type Identifier"). Identifiers are atom literals.
const Identifier = `
spec Identifier
  uses Bool
  atoms Identifier

  ops
    native same? : Identifier, Identifier -> Bool
end
`

// Attrs is the paper's AttributeList, treated as an opaque atom sort: the
// symbol table stores and returns attribute lists without inspecting them.
const Attrs = `
spec Attrs
  atoms Attrs
end
`

// Elem is an atom sort with native equality, for the generic container
// specs (Set, List) in the library.
const Elem = `
spec Elem
  uses Bool
  atoms Elem

  ops
    native sameElem? : Elem, Elem -> Bool
end
`

// Queue is §3 of the paper verbatim: the FIFO queue of Items, Item being
// "a parameter of the type" so that the specification "may be viewed as
// defining a type schema rather than a single type".
const Queue = `
spec Queue
  uses Bool
  param Item

  ops
    new      : -> Queue
    add      : Queue, Item -> Queue
    front    : Queue -> Item
    remove   : Queue -> Queue
    isEmpty? : Queue -> Bool

  vars
    q : Queue
    i : Item

  axioms
    [1] isEmpty?(new) = true
    [2] isEmpty?(add(q, i)) = false
    [3] front(new) = error
    [4] front(add(q, i)) = if isEmpty?(q) then i else front(q)
    [5] remove(new) = error
    [6] remove(add(q, i)) = if isEmpty?(q) then new else add(remove(q), i)
end
`

// BoundedQueue is the ring-buffer-motivating example of §4: a queue "with
// a maximum length of three". Adding to a full queue is the boundary
// condition; every observer maps an overfull queue to error.
const BoundedQueue = `
spec BoundedQueue
  uses Bool, Nat
  param Item

  ops
    emptyq    : -> BoundedQueue
    addq      : BoundedQueue, Item -> BoundedQueue
    frontq    : BoundedQueue -> Item
    removeq   : BoundedQueue -> BoundedQueue
    isEmptyQ? : BoundedQueue -> Bool
    isFullQ?  : BoundedQueue -> Bool
    sizeq     : BoundedQueue -> Nat
    bound     : -> Nat

  vars
    q : BoundedQueue
    i : Item

  axioms
    [b]   bound = succ(succ(succ(zero)))
    [sz1] sizeq(emptyq) = zero
    [sz2] sizeq(addq(q, i)) = if isFullQ?(q) then error else succ(sizeq(q))
    [fu1] isFullQ?(q) = eqN(sizeq(q), bound)
    [em1] isEmptyQ?(q) = eqN(sizeq(q), zero)
    [fr1] frontq(emptyq) = error
    [fr2] frontq(addq(q, i)) = if isFullQ?(q) then error else if isEmptyQ?(q) then i else frontq(q)
    [rm1] removeq(emptyq) = error
    [rm2] removeq(addq(q, i)) = if isFullQ?(q) then error else if isEmptyQ?(q) then emptyq else addq(removeq(q), i)
end
`

// Symboltable is the extended example of §4: the symbol table of a
// compiler for a block structured language. Axioms 1–9 as in the paper.
const Symboltable = `
spec Symboltable
  uses Bool, Identifier, Attrs

  ops
    init       : -> Symboltable
    enterblock : Symboltable -> Symboltable
    leaveblock : Symboltable -> Symboltable
    add        : Symboltable, Identifier, Attrs -> Symboltable
    isInblock? : Symboltable, Identifier -> Bool
    retrieve   : Symboltable, Identifier -> Attrs

  vars
    symtab   : Symboltable
    id, idl  : Identifier
    attrs    : Attrs

  axioms
    [1] leaveblock(init) = error
    [2] leaveblock(enterblock(symtab)) = symtab
    [3] leaveblock(add(symtab, id, attrs)) = leaveblock(symtab)
    [4] isInblock?(init, id) = false
    [5] isInblock?(enterblock(symtab), id) = false
    [6] isInblock?(add(symtab, id, attrs), idl) = if same?(id, idl) then true else isInblock?(symtab, idl)
    [7] retrieve(init, id) = error
    [8] retrieve(enterblock(symtab), id) = retrieve(symtab, id)
    [9] retrieve(add(symtab, id, attrs), idl) = if same?(id, idl) then attrs else retrieve(symtab, idl)
end
`

// Array is the paper's type Array (of attribute lists, indexed by
// identifiers), axioms 17–20.
const Array = `
spec Array
  uses Bool, Identifier, Attrs

  ops
    empty        : -> Array
    assign       : Array, Identifier, Attrs -> Array
    read         : Array, Identifier -> Attrs
    isUndefined? : Array, Identifier -> Bool

  vars
    arr      : Array
    id, idl  : Identifier
    attrs    : Attrs

  axioms
    [17] isUndefined?(empty, id) = true
    [18] isUndefined?(assign(arr, id, attrs), idl) = if same?(id, idl) then false else isUndefined?(arr, idl)
    [19] read(empty, id) = error
    [20] read(assign(arr, id, attrs), idl) = if same?(id, idl) then attrs else read(arr, idl)
end
`

// Stack is the paper's type Stack (of Arrays), axioms 10–16, used by the
// representation of Symboltable.
const Stack = `
spec Stack
  uses Bool, Array

  ops
    newstack    : -> Stack
    push        : Stack, Array -> Stack
    pop         : Stack -> Stack
    top         : Stack -> Array
    isNewstack? : Stack -> Bool
    replace     : Stack, Array -> Stack

  vars
    stk : Stack
    arr : Array

  axioms
    [10] isNewstack?(newstack) = true
    [11] isNewstack?(push(stk, arr)) = false
    [12] pop(newstack) = error
    [13] pop(push(stk, arr)) = stk
    [14] top(newstack) = error
    [15] top(push(stk, arr)) = arr
    [16] replace(stk, arr) = if isNewstack?(stk) then error else push(pop(stk), arr)
end
`

// SymtabImpl is the representation of Symboltable from §4: "treat a value
// of the type as a stack of arrays ... where each array contains the
// attributes for the identifiers declared in a single block". Each
// operation f of Symboltable has its interpretation f' here; the axioms
// are the paper's "code" for the primed operations, read equationally.
const SymtabImpl = `
spec SymtabImpl
  uses Bool, Stack

  ops
    init'       : -> Stack
    enterblock' : Stack -> Stack
    leaveblock' : Stack -> Stack
    add'        : Stack, Identifier, Attrs -> Stack
    isInblock'? : Stack, Identifier -> Bool
    retrieve'   : Stack, Identifier -> Attrs

  vars
    stk   : Stack
    id    : Identifier
    attrs : Attrs

  axioms
    [i]  init' = push(newstack, empty)
    [e]  enterblock'(stk) = push(stk, empty)
    [l]  leaveblock'(stk) = if isNewstack?(pop(stk)) then error else pop(stk)
    [a]  add'(stk, id, attrs) = replace(stk, assign(top(stk), id, attrs))
    [ib] isInblock'?(stk, id) = if isNewstack?(stk) then error else not(isUndefined?(top(stk), id))
    [r]  retrieve'(stk, id) = if isNewstack?(stk) then error else if isUndefined?(top(stk), id) then retrieve'(pop(stk), id) else read(top(stk), id)
end
`

// SymList is an alternative, assumption-free representation substrate for
// Symboltable: a single flat list of block marks and bindings. It exists
// to demonstrate the paper's point that a representation-free
// specification "enables the designer to delay the moment at which a
// storage structure must be designed and frozen".
const SymList = `
spec SymList
  uses Bool, Identifier, Attrs

  ops
    nilst : -> SymList
    mark  : SymList -> SymList
    bind  : SymList, Identifier, Attrs -> SymList
end
`

// ListSymtabImpl implements the Symboltable operations over SymList.
// Unlike SymtabImpl it satisfies all nine axioms without any environment
// assumption (adding to an un-entered table works: bindings before the
// first mark belong to the initial scope... it does not: add2 on nilst
// produces bind(nilst,...) whose leaveblock2 is error, exactly matching
// the abstract axioms).
const ListSymtabImpl = `
spec ListSymtabImpl
  uses Bool, SymList

  ops
    init2       : -> SymList
    enterblock2 : SymList -> SymList
    leaveblock2 : SymList -> SymList
    add2        : SymList, Identifier, Attrs -> SymList
    isInblock2? : SymList, Identifier -> Bool
    retrieve2   : SymList, Identifier -> Attrs
    dropTo      : SymList -> SymList

  vars
    l        : SymList
    id, idl  : Identifier
    attrs    : Attrs

  axioms
    [i]   init2 = nilst
    [e]   enterblock2(l) = mark(l)
    [a]   add2(l, id, attrs) = bind(l, id, attrs)
    [l1]  leaveblock2(nilst) = error
    [l2]  leaveblock2(mark(l)) = l
    [l3]  leaveblock2(bind(l, id, attrs)) = leaveblock2(l)
    [ib1] isInblock2?(nilst, id) = false
    [ib2] isInblock2?(mark(l), id) = false
    [ib3] isInblock2?(bind(l, id, attrs), idl) = if same?(id, idl) then true else isInblock2?(l, idl)
    [r1]  retrieve2(nilst, id) = error
    [r2]  retrieve2(mark(l), id) = retrieve2(l, id)
    [r3]  retrieve2(bind(l, id, attrs), idl) = if same?(id, idl) then attrs else retrieve2(l, idl)
    [d1]  dropTo(nilst) = error
    [d2]  dropTo(mark(l)) = l
    [d3]  dropTo(bind(l, id, attrs)) = dropTo(l)
end
`

// Knowlist is the §4 change-of-language example: "the inheritance of
// global variables only if they appear in a knows list".
const Knowlist = `
spec Knowlist
  uses Bool, Identifier

  ops
    create : -> Knowlist
    append : Knowlist, Identifier -> Knowlist
    isIn?  : Knowlist, Identifier -> Bool

  vars
    klist    : Knowlist
    id, idl  : Identifier

  axioms
    [k1] isIn?(create, id) = false
    [k2] isIn?(append(klist, id), idl) = if same?(id, idl) then true else isIn?(klist, idl)
end
`

// SymboltableKnows is the adapted symbol table: ENTERBLOCK gains a
// Knowlist argument, and — exactly as the paper says — "all relations,
// and only those relations, that explicitly deal with the ENTERBLOCK
// operation" change (axioms 2, 5 and 8).
const SymboltableKnows = `
spec SymboltableKnows
  uses Bool, Identifier, Attrs, Knowlist

  ops
    init       : -> SymboltableKnows
    enterblock : SymboltableKnows, Knowlist -> SymboltableKnows
    leaveblock : SymboltableKnows -> SymboltableKnows
    add        : SymboltableKnows, Identifier, Attrs -> SymboltableKnows
    isInblock? : SymboltableKnows, Identifier -> Bool
    retrieve   : SymboltableKnows, Identifier -> Attrs

  vars
    symtab   : SymboltableKnows
    id, idl  : Identifier
    attrs    : Attrs
    klist    : Knowlist

  axioms
    [1] leaveblock(init) = error
    [2] leaveblock(enterblock(symtab, klist)) = symtab
    [3] leaveblock(add(symtab, id, attrs)) = leaveblock(symtab)
    [4] isInblock?(init, id) = false
    [5] isInblock?(enterblock(symtab, klist), id) = false
    [6] isInblock?(add(symtab, id, attrs), idl) = if same?(id, idl) then true else isInblock?(symtab, idl)
    [7] retrieve(init, id) = error
    [8] retrieve(enterblock(symtab, klist), id) = if isIn?(klist, id) then retrieve(symtab, id) else error
    [9] retrieve(add(symtab, id, attrs), idl) = if same?(id, idl) then attrs else retrieve(symtab, idl)
end
`

// Set is a library extra in the paper's style: finite sets of Elems with
// membership-based observers.
const Set = `
spec Set
  uses Bool, Nat, Elem

  ops
    emptyset    : -> Set
    insert      : Set, Elem -> Set
    isMember?   : Set, Elem -> Bool
    delete      : Set, Elem -> Set
    card        : Set -> Nat
    isEmptySet? : Set -> Bool

  vars
    s    : Set
    e, f : Elem

  axioms
    [m1] isMember?(emptyset, e) = false
    [m2] isMember?(insert(s, e), f) = if sameElem?(e, f) then true else isMember?(s, f)
    [d1] delete(emptyset, e) = emptyset
    [d2] delete(insert(s, e), f) = if sameElem?(e, f) then delete(s, f) else insert(delete(s, f), e)
    [c1] card(emptyset) = zero
    [c2] card(insert(s, e)) = if isMember?(s, e) then card(s) else succ(card(s))
    [e1] isEmptySet?(emptyset) = true
    [e2] isEmptySet?(insert(s, e)) = false
end
`

// List is a library extra: sequences of Elems, exercising axioms that
// recurse through an auxiliary operation (reverse via appendL).
const List = `
spec List
  uses Bool, Nat, Elem

  ops
    nil      : -> List
    cons     : Elem, List -> List
    head     : List -> Elem
    tail     : List -> List
    isNil?   : List -> Bool
    appendL  : List, List -> List
    lengthL  : List -> Nat
    memberL? : List, Elem -> Bool
    reverseL : List -> List

  vars
    l, k : List
    e, f : Elem

  axioms
    [h1]  head(nil) = error
    [h2]  head(cons(e, l)) = e
    [t1]  tail(nil) = error
    [t2]  tail(cons(e, l)) = l
    [n1]  isNil?(nil) = true
    [n2]  isNil?(cons(e, l)) = false
    [ap1] appendL(nil, k) = k
    [ap2] appendL(cons(e, l), k) = cons(e, appendL(l, k))
    [ln1] lengthL(nil) = zero
    [ln2] lengthL(cons(e, l)) = succ(lengthL(l))
    [mb1] memberL?(nil, e) = false
    [mb2] memberL?(cons(e, l), f) = if sameElem?(e, f) then true else memberL?(l, f)
    [rv1] reverseL(nil) = nil
    [rv2] reverseL(cons(e, l)) = appendL(reverseL(l), cons(e, nil))
end
`

// Sources lists every library source in dependency order.
var Sources = []string{
	Bool,
	Nat,
	Identifier,
	Attrs,
	Elem,
	Queue,
	BoundedQueue,
	Symboltable,
	Array,
	Stack,
	SymtabImpl,
	SymList,
	ListSymtabImpl,
	Knowlist,
	SymboltableKnows,
	Set,
	List,
	Bag,
	BST,
	Map,
}

// Names lists the specification names in the same order as Sources.
var Names = []string{
	"Bool",
	"Nat",
	"Identifier",
	"Attrs",
	"Elem",
	"Queue",
	"BoundedQueue",
	"Symboltable",
	"Array",
	"Stack",
	"SymtabImpl",
	"SymList",
	"ListSymtabImpl",
	"Knowlist",
	"SymboltableKnows",
	"Set",
	"List",
	"Bag",
	"BST",
	"Map",
}

// BaseEnv returns a fresh environment with the whole library loaded.
func BaseEnv() *core.Env {
	env := core.NewEnv()
	env.MustLoad(Sources...)
	return env
}

// Summary is one specification's shape as reported by `adt info` and the
// server's GET /v1/specs: its name, how many operations and axioms it
// states itself, which specs it uses, and which of its own operations
// are constructors.
type Summary struct {
	Name         string   `json:"name"`
	OwnOps       int      `json:"ops"`
	OwnAxioms    int      `json:"axioms"`
	Uses         []string `json:"uses,omitempty"`
	Constructors []string `json:"constructors,omitempty"`
	// Confluent carries the spec's confluence-certificate verdict when
	// the caller has one (the server fills it from the registry
	// version's cached certificate); nil means "not computed here".
	Confluent *bool `json:"confluent,omitempty"`
}

// Summarize describes every specification loaded in env, in load order
// (the library's dependency order, followed by any user files). It is
// the data source for GET /v1/specs.
func Summarize(env *core.Env) []Summary {
	names := env.Names()
	out := make([]Summary, 0, len(names))
	for _, name := range names {
		sp := env.MustGet(name)
		s := Summary{
			Name:      sp.Name,
			OwnOps:    len(sp.OwnOps),
			OwnAxioms: len(sp.Own),
		}
		s.Uses = append(s.Uses, sp.Uses...)
		for _, opName := range sp.OwnOps {
			if sp.IsConstructor(opName) {
				s.Constructors = append(s.Constructors, opName)
			}
		}
		out = append(out, s)
	}
	return out
}
