package speclib_test

import (
	"testing"

	"algspec/internal/speclib"
)

func TestBaseEnvLoadsEverything(t *testing.T) {
	env := speclib.BaseEnv()
	if len(env.Names()) != len(speclib.Names) {
		t.Fatalf("loaded %d specs, want %d", len(env.Names()), len(speclib.Names))
	}
	for i, name := range env.Names() {
		if name != speclib.Names[i] {
			t.Errorf("spec %d = %s, want %s", i, name, speclib.Names[i])
		}
	}
}

// The paper's axiom numbering is preserved: Queue 1-6, Symboltable 1-9,
// Stack 10-16, Array 17-20.
func TestPaperAxiomNumbering(t *testing.T) {
	env := speclib.BaseEnv()
	cases := []struct {
		spec   string
		labels []string
	}{
		{"Queue", []string{"1", "2", "3", "4", "5", "6"}},
		{"Symboltable", []string{"1", "2", "3", "4", "5", "6", "7", "8", "9"}},
		{"Stack", []string{"10", "11", "12", "13", "14", "15", "16"}},
		{"Array", []string{"17", "18", "19", "20"}},
	}
	for _, c := range cases {
		sp := env.MustGet(c.spec)
		if len(sp.Own) != len(c.labels) {
			t.Errorf("%s: %d axioms, want %d", c.spec, len(sp.Own), len(c.labels))
			continue
		}
		for i, want := range c.labels {
			if sp.Own[i].Label != want {
				t.Errorf("%s axiom %d label = %s, want %s", c.spec, i, sp.Own[i].Label, want)
			}
		}
	}
}

// The paper's operation inventories are present.
func TestPaperOperations(t *testing.T) {
	env := speclib.BaseEnv()
	cases := map[string][]string{
		"Queue":            {"new", "add", "front", "remove", "isEmpty?"},
		"Symboltable":      {"init", "enterblock", "leaveblock", "add", "isInblock?", "retrieve"},
		"Stack":            {"newstack", "push", "pop", "top", "isNewstack?", "replace"},
		"Array":            {"empty", "assign", "read", "isUndefined?"},
		"Knowlist":         {"create", "append", "isIn?"},
		"SymtabImpl":       {"init'", "enterblock'", "leaveblock'", "add'", "isInblock'?", "retrieve'"},
		"SymboltableKnows": {"init", "enterblock", "leaveblock", "add", "isInblock?", "retrieve"},
	}
	for name, ops := range cases {
		sp := env.MustGet(name)
		for _, opName := range ops {
			if _, ok := sp.Sig.Op(opName); !ok {
				t.Errorf("%s: operation %s missing", name, opName)
			}
		}
	}
}

// The knows variant's ENTERBLOCK takes a Knowlist, and that is the only
// functionality change among the six operations.
func TestKnowsSignatureChange(t *testing.T) {
	env := speclib.BaseEnv()
	plain := env.MustGet("Symboltable")
	knows := env.MustGet("SymboltableKnows")
	eb, _ := knows.Sig.Op("enterblock")
	if eb.Arity() != 2 || eb.Domain[1] != "Knowlist" {
		t.Errorf("knows enterblock = %v", eb)
	}
	for _, name := range []string{"init", "leaveblock", "add", "isInblock?", "retrieve"} {
		p := plain.Sig.MustOp(name)
		k := knows.Sig.MustOp(name)
		if p.Arity() != k.Arity() {
			t.Errorf("%s arity changed: %d vs %d", name, p.Arity(), k.Arity())
		}
	}
}

// E6: exactly the ENTERBLOCK-mentioning axioms (2, 5, 8) differ between
// the two symbol table specs.
func TestKnowsAxiomLocality(t *testing.T) {
	env := speclib.BaseEnv()
	plain := env.MustGet("Symboltable")
	knows := env.MustGet("SymboltableKnows")
	changed := map[string]bool{}
	for _, ax := range plain.Own {
		kax, ok := knows.AxiomByLabel(ax.Label)
		if !ok {
			t.Fatalf("axiom %s missing from knows spec", ax.Label)
		}
		if ax.LHS.String() != kax.LHS.String() || ax.RHS.String() != kax.RHS.String() {
			changed[ax.Label] = true
		}
	}
	want := map[string]bool{"2": true, "5": true, "8": true}
	if len(changed) != len(want) {
		t.Errorf("changed = %v, want %v", changed, want)
	}
	for label := range want {
		if !changed[label] {
			t.Errorf("axiom %s should have changed", label)
		}
	}
}

// Native operations are flagged in the signature.
func TestNativeOps(t *testing.T) {
	env := speclib.BaseEnv()
	id := env.MustGet("Identifier")
	same := id.Sig.MustOp("same?")
	if !same.Native {
		t.Error("same? not native")
	}
	el := env.MustGet("Elem")
	if !el.Sig.MustOp("sameElem?").Native {
		t.Error("sameElem? not native")
	}
}

// Spot-check behaviours across the library.
func TestLibraryBehaviours(t *testing.T) {
	env := speclib.BaseEnv()
	cases := []struct{ spec, in, want string }{
		{"Set", "isMember?(insert(insert(emptyset, 'a), 'b), 'a)", "true"},
		{"Set", "isMember?(delete(insert(insert(emptyset, 'a), 'b), 'a), 'a)", "false"},
		{"Set", "card(insert(insert(insert(emptyset, 'a), 'b), 'a))", "succ(succ(zero))"},
		{"Set", "isEmptySet?(delete(insert(emptyset, 'a), 'a))", "true"},
		{"List", "head(reverseL(cons('a, cons('b, nil))))", "'b"},
		{"List", "lengthL(appendL(cons('a, nil), cons('b, cons('c, nil))))", "succ(succ(succ(zero)))"},
		{"List", "memberL?(tail(cons('a, cons('b, nil))), 'a)", "false"},
		{"BoundedQueue", "frontq(removeq(addq(addq(emptyq, 'a), 'b)))", "'b"},
		{"BoundedQueue", "isFullQ?(addq(addq(addq(emptyq, 'a), 'b), 'c))", "true"},
		{"Knowlist", "isIn?(append(append(create, 'x), 'y), 'x)", "true"},
		{"Knowlist", "isIn?(create, 'x)", "false"},
	}
	for _, c := range cases {
		if got := env.MustEval(c.spec, c.in).String(); got != c.want {
			t.Errorf("%s: %s = %s, want %s", c.spec, c.in, got, c.want)
		}
	}
}

// Summarize reports every loaded spec in load order with the shape the
// server's GET /v1/specs exposes.
func TestSummarize(t *testing.T) {
	env := speclib.BaseEnv()
	sums := speclib.Summarize(env)
	if len(sums) != len(speclib.Names) {
		t.Fatalf("summarized %d specs, want %d", len(sums), len(speclib.Names))
	}
	byName := map[string]speclib.Summary{}
	for i, s := range sums {
		if s.Name != speclib.Names[i] {
			t.Errorf("summary %d = %s, want %s (load order)", i, s.Name, speclib.Names[i])
		}
		byName[s.Name] = s
	}
	q := byName["Queue"]
	if q.OwnOps != 5 || q.OwnAxioms != 6 {
		t.Errorf("Queue summary = %+v, want 5 ops / 6 axioms", q)
	}
	if len(q.Uses) != 1 || q.Uses[0] != "Bool" {
		t.Errorf("Queue uses = %v, want [Bool]", q.Uses)
	}
	wantCons := map[string]bool{"new": true, "add": true}
	if len(q.Constructors) != 2 || !wantCons[q.Constructors[0]] || !wantCons[q.Constructors[1]] {
		t.Errorf("Queue constructors = %v, want new+add", q.Constructors)
	}
}
