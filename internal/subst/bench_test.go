package subst

import (
	"testing"

	"algspec/internal/term"
)

func benchPattern() *term.Term {
	// remove(add(q, i)) — the paper's axiom 6 pattern.
	return term.NewOp("remove", "Queue",
		term.NewOp("add", "Queue",
			term.NewVar("q", "Queue"),
			term.NewVar("i", "Item")))
}

func benchTarget(depth int) *term.Term {
	t := term.NewOp("new", "Queue")
	for i := 0; i < depth; i++ {
		t = term.NewOp("add", "Queue", t, term.NewAtom("x", "Item"))
	}
	return term.NewOp("remove", "Queue", t)
}

func BenchmarkMatch(b *testing.B) {
	pat := benchPattern()
	tgt := benchTarget(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if TryMatch(pat, tgt) == nil {
			b.Fatal("match failed")
		}
	}
}

func BenchmarkMatchFail(b *testing.B) {
	pat := benchPattern()
	tgt := term.NewOp("remove", "Queue", term.NewOp("new", "Queue"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if TryMatch(pat, tgt) != nil {
			b.Fatal("unexpected match")
		}
	}
}

func BenchmarkApply(b *testing.B) {
	pat := benchPattern()
	tgt := benchTarget(16)
	m := TryMatch(pat, tgt)
	if m == nil {
		b.Fatal("match failed")
	}
	rhs := term.NewOp("add", "Queue",
		term.NewOp("remove", "Queue", term.NewVar("q", "Queue")),
		term.NewVar("i", "Item"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Apply(rhs)
	}
}

func BenchmarkUnify(b *testing.B) {
	l := term.NewOp("add", "Queue",
		term.NewOp("add", "Queue", term.NewVar("q", "Queue"), term.NewVar("i", "Item")),
		term.NewVar("j", "Item"))
	r := term.NewOp("add", "Queue",
		term.NewVar("r", "Queue"),
		term.NewAtom("z", "Item"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := Unify(l, r); !ok {
			b.Fatal("unify failed")
		}
	}
}
