// Bindings is the rewrite engine's allocation-light substitution: axiom
// patterns bind a handful of variables, so a small slice with linear
// lookup beats a map on the matching hot path (no per-attempt map
// allocation, and failed matches — the overwhelming majority — allocate
// nothing at all when the caller reuses the buffer).
package subst

import (
	"algspec/internal/term"
)

// Binding is one variable binding in a Bindings list.
type Binding struct {
	Name string
	Term *term.Term
}

// Bindings is a substitution represented as a short slice. The zero
// value is ready to use; pass a previous result's [:0] to MatchBind to
// reuse its backing array across match attempts.
type Bindings []Binding

// Lookup returns the binding for the named variable.
func (b Bindings) Lookup(name string) (*term.Term, bool) {
	for i := range b {
		if b[i].Name == name {
			return b[i].Term, true
		}
	}
	return nil, false
}

// MatchBind matches pattern against t, appending bindings to buf and
// returning the extended slice. Semantics are identical to Match: one-way
// matching, sorts respected, and the error value is matched only by the
// literal error pattern (strictness is the engine's job, not the
// axioms'). On failure the returned slice may hold partial bindings; the
// caller reslices to [:0] before reuse.
func MatchBind(pattern, t *term.Term, buf Bindings) (Bindings, bool) {
	switch pattern.Kind {
	case term.Var:
		if t.Kind == term.Err {
			return buf, false
		}
		if pattern.Sort != t.Sort {
			return buf, false
		}
		if old, ok := buf.Lookup(pattern.Sym); ok {
			return buf, old.Equal(t)
		}
		return append(buf, Binding{Name: pattern.Sym, Term: t}), true
	case term.Err:
		return buf, t.Kind == term.Err
	case term.Atom:
		return buf, t.Kind == term.Atom && t.Sym == pattern.Sym && t.Sort == pattern.Sort
	default:
		if t.Kind != term.Op || t.Sym != pattern.Sym || len(t.Args) != len(pattern.Args) {
			return buf, false
		}
		var ok bool
		for i := range pattern.Args {
			if buf, ok = MatchBind(pattern.Args[i], t.Args[i], buf); !ok {
				return buf, false
			}
		}
		return buf, true
	}
}

// Build applies the bindings to t. Unbound variables are left in place
// and untouched subterms are shared, exactly like Subst.Apply. When in is
// non-nil every rebuilt node is interned, so a term built from an
// interned t comes out fully canonical.
func (b Bindings) Build(in *term.Interner, t *term.Term) *term.Term {
	switch t.Kind {
	case term.Var:
		if v, ok := b.Lookup(t.Sym); ok {
			return v
		}
		return t
	case term.Atom, term.Err:
		return t
	default:
		changed := false
		args := make([]*term.Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = b.Build(in, a)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return t
		}
		if in != nil {
			return in.OpTerms(t.Sym, t.Sort, args)
		}
		return &term.Term{Kind: t.Kind, Sym: t.Sym, Sort: t.Sort, Args: args}
	}
}

// Subst converts the bindings to a map-backed substitution (for callers
// off the hot path that want the richer Subst API).
func (b Bindings) Subst() Subst {
	s := make(Subst, len(b))
	for i := range b {
		s[b[i].Name] = b[i].Term
	}
	return s
}
