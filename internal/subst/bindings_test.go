package subst

import (
	"testing"

	"algspec/internal/term"
)

func bOp(name string, args ...*term.Term) *term.Term { return term.NewOp(name, "Queue", args...) }

func TestMatchBindAgreesWithMatch(t *testing.T) {
	q := term.NewVar("q", "Queue")
	i := term.NewVar("i", "Item")
	pat := bOp("remove", bOp("add", q, i))
	cases := []*term.Term{
		bOp("remove", bOp("add", bOp("new"), term.NewAtom("x", "Item"))),
		bOp("remove", bOp("new")),
		bOp("front", bOp("add", bOp("new"), term.NewAtom("x", "Item"))),
		bOp("remove", bOp("add", term.NewErr("Queue"), term.NewAtom("x", "Item"))),
	}
	for _, c := range cases {
		m := TryMatch(pat, c)
		b, ok := MatchBind(pat, c, nil)
		if (m != nil) != ok {
			t.Fatalf("MatchBind(%s) = %v, Match = %v", c, ok, m != nil)
		}
		if !ok {
			continue
		}
		if len(b) != len(m) {
			t.Fatalf("binding counts differ on %s: %d vs %d", c, len(b), len(m))
		}
		for name, want := range m {
			got, found := b.Lookup(name)
			if !found || !got.Equal(want) {
				t.Fatalf("binding %s differs on %s: %s vs %s", name, c, got, want)
			}
		}
	}
}

func TestMatchBindNonLinear(t *testing.T) {
	x := term.NewVar("x", "Item")
	pat := term.NewOp("pair", "Queue", x, x)
	same := term.NewOp("pair", "Queue", term.NewAtom("a", "Item"), term.NewAtom("a", "Item"))
	diff := term.NewOp("pair", "Queue", term.NewAtom("a", "Item"), term.NewAtom("b", "Item"))
	if _, ok := MatchBind(pat, same, nil); !ok {
		t.Fatal("repeated variable must match equal subterms")
	}
	if _, ok := MatchBind(pat, diff, nil); ok {
		t.Fatal("repeated variable must reject different subterms")
	}
}

func TestMatchBindBufferReuse(t *testing.T) {
	q := term.NewVar("q", "Queue")
	pat := bOp("remove", q)
	var buf Bindings
	for i := 0; i < 3; i++ {
		var ok bool
		buf, ok = MatchBind(pat, bOp("remove", bOp("new")), buf[:0])
		if !ok || len(buf) != 1 {
			t.Fatalf("round %d: ok=%v len=%d", i, ok, len(buf))
		}
	}
}

func TestBuildInterned(t *testing.T) {
	in := term.NewInterner()
	q := in.Var("q", "Queue")
	rhs := in.Op("front", "Item", in.Op("remove", "Queue", q))
	val := in.Op("add", "Queue", in.Op("new", "Queue"), in.Atom("x", "Item"))
	b := Bindings{{Name: "q", Term: val}}
	out := b.Build(in, rhs)
	if !in.Interned(out) {
		t.Fatal("Build with an interner must return a canonical term")
	}
	if out.String() != "front(remove(add(new, 'x)))" {
		t.Fatalf("Build produced %s", out)
	}
	if b.Build(in, rhs) != out {
		t.Fatal("rebuilding the same term must return the same canonical node")
	}
	// Without an interner the result is structurally identical.
	if !b.Build(nil, rhs).Equal(out) {
		t.Fatal("interned and plain Build disagree")
	}
}

func TestApplyIn(t *testing.T) {
	in := term.NewInterner()
	q := term.NewVar("q", "Queue")
	rhs := bOp("remove", q)
	s := Subst{"q": bOp("new")}
	plain := s.Apply(rhs)
	interned := s.ApplyIn(in, rhs)
	if !plain.Equal(interned) {
		t.Fatalf("ApplyIn differs from Apply: %s vs %s", interned, plain)
	}
	if !in.Interned(interned) {
		t.Fatal("ApplyIn must intern rebuilt nodes")
	}
}
