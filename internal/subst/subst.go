// Package subst implements substitutions over the term algebra, together
// with the two matching problems the framework needs:
//
//   - one-way pattern matching (used by the rewrite engine to apply an
//     axiom left-to-right);
//   - syntactic unification (used by the consistency checker to compute
//     critical pairs between axiom left-hand sides).
//
// Matching is performed modulo the paper's error convention: the error
// value matches only the literal error pattern, never an operation or
// variable pattern of the same sort — error is handled by the engine's
// strictness rule, not by axioms.
package subst

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"algspec/internal/term"
)

// Subst maps variable names to terms. The zero value is not usable;
// call New.
type Subst map[string]*term.Term

// New returns an empty substitution.
func New() Subst { return make(Subst) }

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Bind records v ↦ t, failing if v is already bound to a different term.
func (s Subst) Bind(v string, t *term.Term) error {
	if old, ok := s[v]; ok {
		if !old.Equal(t) {
			return fmt.Errorf("subst: variable %s bound to both %s and %s", v, old, t)
		}
		return nil
	}
	s[v] = t
	return nil
}

// Apply replaces every variable in t that the substitution binds.
// Unbound variables are left in place. Subterms without bound variables
// are shared, not copied.
func (s Subst) Apply(t *term.Term) *term.Term { return s.ApplyIn(nil, t) }

// ApplyIn is Apply building every rebuilt node through the interner when
// in is non-nil: applying a substitution of interned terms to an
// interned pattern then yields a fully canonical (hash-consed) result.
func (s Subst) ApplyIn(in *term.Interner, t *term.Term) *term.Term {
	switch t.Kind {
	case term.Var:
		if b, ok := s[t.Sym]; ok {
			return b
		}
		return t
	case term.Atom, term.Err:
		return t
	default:
		changed := false
		args := make([]*term.Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = s.ApplyIn(in, a)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return t
		}
		if in != nil {
			return in.OpTerms(t.Sym, t.Sort, args)
		}
		return &term.Term{Kind: t.Kind, Sym: t.Sym, Sort: t.Sort, Args: args}
	}
}

// Compose returns the substitution equivalent to applying s then u:
// (s.Compose(u)).Apply(t) == u.Apply(s.Apply(t)).
func (s Subst) Compose(u Subst) Subst {
	out := make(Subst, len(s)+len(u))
	for k, v := range s {
		out[k] = u.Apply(v)
	}
	for k, v := range u {
		if _, shadowed := s[k]; !shadowed {
			out[k] = v
		}
	}
	return out
}

// Domain returns the bound variable names, sorted.
func (s Subst) Domain() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the substitution deterministically, e.g. {q ↦ new, i ↦ 'x}.
func (s Subst) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range s.Domain() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s -> %s", k, s[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Match attempts to match pattern against t, extending the given
// substitution. Variables occur only in the pattern; any variables in t
// are treated as constants (this is what critical-pair computation and
// coverage analysis need). Matching respects sorts: a pattern variable of
// sort S matches only terms of sort S. On failure the substitution may be
// partially extended; callers that need rollback should pass a clone.
func Match(pattern, t *term.Term, s Subst) bool {
	switch pattern.Kind {
	case term.Var:
		if pattern.Sort != t.Sort && t.Kind != term.Err {
			return false
		}
		if t.Kind == term.Err {
			// error is never captured by a variable: strictness is the
			// engine's job, and letting axioms capture error would let
			// e.g. remove(add(q,i)) fire on remove(add(error,'x)).
			return false
		}
		return s.Bind(pattern.Sym, t) == nil
	case term.Err:
		return t.Kind == term.Err
	case term.Atom:
		return t.Kind == term.Atom && t.Sym == pattern.Sym && t.Sort == pattern.Sort
	default:
		if t.Kind != term.Op || t.Sym != pattern.Sym || len(t.Args) != len(pattern.Args) {
			return false
		}
		for i := range pattern.Args {
			if !Match(pattern.Args[i], t.Args[i], s) {
				return false
			}
		}
		return true
	}
}

// TryMatch is Match with fresh-substitution semantics: it returns the
// matcher on success and nil on failure, never mutating its inputs.
func TryMatch(pattern, t *term.Term) Subst {
	s := New()
	if Match(pattern, t, s) {
		return s
	}
	return nil
}

// Unify computes a most general unifier of a and b, treating variables in
// both terms as unifiable. It returns nil and false when no unifier
// exists. Errors unify only with errors and with variables of any sort
// (a variable can be instantiated to error during unification because
// critical-pair analysis must consider error-producing instances).
func Unify(a, b *term.Term) (Subst, bool) {
	s := New()
	if unify(a, b, s) {
		// Fully resolve bindings so the result is idempotent.
		out := New()
		for k, v := range s {
			out[k] = resolve(v, s)
		}
		return out, true
	}
	return nil, false
}

func unify(a, b *term.Term, s Subst) bool {
	a = walk(a, s)
	b = walk(b, s)
	switch {
	case a.Kind == term.Var:
		return bindVar(a, b, s)
	case b.Kind == term.Var:
		return bindVar(b, a, s)
	case a.Kind == term.Err || b.Kind == term.Err:
		return a.Kind == term.Err && b.Kind == term.Err
	case a.Kind == term.Atom || b.Kind == term.Atom:
		return a.Kind == term.Atom && b.Kind == term.Atom &&
			a.Sym == b.Sym && a.Sort == b.Sort
	default:
		if a.Sym != b.Sym || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !unify(a.Args[i], b.Args[i], s) {
				return false
			}
		}
		return true
	}
}

func bindVar(v, t *term.Term, s Subst) bool {
	if t.Kind == term.Var && t.Sym == v.Sym && t.Sort == v.Sort {
		return true
	}
	if t.Kind != term.Err && v.Sort != t.Sort {
		return false
	}
	if occurs(v.Sym, t, s) {
		return false
	}
	s[v.Sym] = t
	return true
}

func walk(t *term.Term, s Subst) *term.Term {
	for t.Kind == term.Var {
		b, ok := s[t.Sym]
		if !ok {
			return t
		}
		t = b
	}
	return t
}

func occurs(name string, t *term.Term, s Subst) bool {
	t = walk(t, s)
	if t.Kind == term.Var {
		return t.Sym == name
	}
	for _, a := range t.Args {
		if occurs(name, a, s) {
			return true
		}
	}
	return false
}

func resolve(t *term.Term, s Subst) *term.Term {
	t = walk(t, s)
	if len(t.Args) == 0 {
		return t
	}
	args := make([]*term.Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = resolve(a, s)
	}
	return &term.Term{Kind: t.Kind, Sym: t.Sym, Sort: t.Sort, Args: args}
}

// RenameApart returns a copy of t whose variables are renamed with the
// given suffix index so that two axioms can be unified without accidental
// variable capture (x becomes x#1 etc.).
func RenameApart(t *term.Term, idx int) *term.Term {
	suffix := "#" + strconv.Itoa(idx)
	return t.Rename(func(name string) string { return name + suffix })
}
