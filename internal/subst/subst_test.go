package subst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"algspec/internal/term"
)

func newQ() *Term          { return term.NewOp("new", "Queue") }
func atom(s string) *Term  { return term.NewAtom(s, "Item") }
func qvar(n string) *Term  { return term.NewVar(n, "Queue") }
func ivar(n string) *Term  { return term.NewVar(n, "Item") }
func add(q, i *Term) *Term { return term.NewOp("add", "Queue", q, i) }

type Term = term.Term

func TestBind(t *testing.T) {
	s := New()
	if err := s.Bind("q", newQ()); err != nil {
		t.Fatal(err)
	}
	// Rebinding to an equal term is fine.
	if err := s.Bind("q", newQ()); err != nil {
		t.Errorf("equal rebind rejected: %v", err)
	}
	// Rebinding to a different term is a conflict.
	if err := s.Bind("q", add(newQ(), atom("x"))); err == nil {
		t.Error("conflicting rebind accepted")
	}
}

func TestApplySharing(t *testing.T) {
	s := Subst{"q": newQ()}
	ground := add(newQ(), atom("x"))
	if s.Apply(ground) != ground {
		t.Error("Apply copied a term without bound variables")
	}
	open := add(qvar("q"), atom("x"))
	got := s.Apply(open)
	if got.String() != "add(new, 'x)" {
		t.Errorf("Apply = %s", got)
	}
	// Unbound variables stay.
	half := add(qvar("q"), ivar("i"))
	if got := s.Apply(half); got.String() != "add(new, i)" {
		t.Errorf("Apply = %s", got)
	}
}

func TestCompose(t *testing.T) {
	s := Subst{"q": add(qvar("r"), atom("x"))}
	u := Subst{"r": newQ(), "i": atom("y")}
	comp := s.Compose(u)
	target := add(qvar("q"), ivar("i"))
	a := comp.Apply(target)
	b := u.Apply(s.Apply(target))
	if !a.Equal(b) {
		t.Errorf("compose law violated: %s vs %s", a, b)
	}
	// s's bindings shadow u's for the same variable.
	s2 := Subst{"q": newQ()}
	u2 := Subst{"q": add(newQ(), atom("z"))}
	if got := s2.Compose(u2)["q"]; !got.Equal(newQ()) {
		t.Errorf("shadowing wrong: %s", got)
	}
}

func TestDomainAndString(t *testing.T) {
	s := Subst{"b": newQ(), "a": newQ()}
	d := s.Domain()
	if len(d) != 2 || d[0] != "a" || d[1] != "b" {
		t.Errorf("Domain = %v", d)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	if s.Clone().String() != s.String() {
		t.Error("clone differs")
	}
}

func TestMatchBasics(t *testing.T) {
	pat := add(qvar("q"), ivar("i"))
	tm := add(add(newQ(), atom("x")), atom("y"))
	m := TryMatch(pat, tm)
	if m == nil {
		t.Fatal("match failed")
	}
	if !m["q"].Equal(add(newQ(), atom("x"))) || !m["i"].Equal(atom("y")) {
		t.Errorf("bindings = %v", m)
	}
	// Head mismatch.
	if TryMatch(pat, newQ()) != nil {
		t.Error("matched wrong head")
	}
	// Sort-respecting: a Queue variable does not match an Item term.
	if TryMatch(qvar("q"), atom("x")) != nil {
		t.Error("variable matched wrong sort")
	}
	// Atom patterns match only the same atom.
	if TryMatch(atom("x"), atom("y")) != nil {
		t.Error("different atoms matched")
	}
	if TryMatch(atom("x"), atom("x")) == nil {
		t.Error("same atoms did not match")
	}
}

func TestMatchNonLinear(t *testing.T) {
	// A repeated variable must bind consistently.
	pat := add(add(qvar("q"), ivar("i")), ivar("i"))
	same := add(add(newQ(), atom("x")), atom("x"))
	diff := add(add(newQ(), atom("x")), atom("y"))
	if TryMatch(pat, same) == nil {
		t.Error("consistent non-linear match failed")
	}
	if TryMatch(pat, diff) != nil {
		t.Error("inconsistent non-linear match succeeded")
	}
}

func TestMatchError(t *testing.T) {
	// error matches only the error pattern, never variables.
	if TryMatch(qvar("q"), term.NewErr("Queue")) != nil {
		t.Error("variable captured error")
	}
	if TryMatch(term.NewErr("Queue"), term.NewErr("Item")) == nil {
		t.Error("error pattern did not match error")
	}
	if TryMatch(term.NewErr("Queue"), newQ()) != nil {
		t.Error("error pattern matched non-error")
	}
	// An operation pattern does not match error either.
	pat := add(qvar("q"), ivar("i"))
	if TryMatch(pat, term.NewErr("Queue")) != nil {
		t.Error("op pattern matched error")
	}
}

func TestMatchVarTargetIsConstant(t *testing.T) {
	// Variables in the target are constants: pattern var binds to them,
	// but an op pattern does not match a var target.
	if m := TryMatch(qvar("q"), qvar("r")); m == nil || !m["q"].Equal(qvar("r")) {
		t.Error("pattern var should bind target var")
	}
	if TryMatch(add(qvar("q"), ivar("i")), qvar("r")) != nil {
		t.Error("op pattern matched var target")
	}
}

func TestUnifyBasics(t *testing.T) {
	// add(q, 'x) =? add(new, i)  =>  q := new, i := 'x
	u, ok := Unify(add(qvar("q"), atom("x")), add(newQ(), ivar("i")))
	if !ok {
		t.Fatal("unify failed")
	}
	if !u["q"].Equal(newQ()) || !u["i"].Equal(atom("x")) {
		t.Errorf("unifier = %v", u)
	}
	// Clash.
	if _, ok := Unify(newQ(), add(qvar("q"), ivar("i"))); ok {
		t.Error("unified clashing heads")
	}
	// Occurs check.
	if _, ok := Unify(qvar("q"), add(qvar("q"), atom("x"))); ok {
		t.Error("occurs check failed")
	}
	// Same variable unifies with itself.
	if _, ok := Unify(qvar("q"), qvar("q")); !ok {
		t.Error("q =? q failed")
	}
	// Sort clash between var and term.
	if _, ok := Unify(qvar("q"), atom("x")); ok {
		t.Error("unified across sorts")
	}
}

func TestUnifyIsUnifier(t *testing.T) {
	cases := [][2]*Term{
		{add(qvar("q"), atom("x")), add(newQ(), ivar("i"))},
		{add(add(qvar("q"), ivar("i")), ivar("j")), add(qvar("r"), atom("z"))},
		{qvar("a"), qvar("b")},
		{add(qvar("q"), ivar("i")), add(qvar("q"), ivar("i"))},
	}
	for _, c := range cases {
		u, ok := Unify(c[0], c[1])
		if !ok {
			t.Errorf("no unifier for %s =? %s", c[0], c[1])
			continue
		}
		a, b := u.Apply(c[0]), u.Apply(c[1])
		if !a.Equal(b) {
			t.Errorf("unifier does not unify: %s vs %s (u=%v)", a, b, u)
		}
	}
}

func TestUnifyErrors(t *testing.T) {
	// error unifies with error and with variables.
	if _, ok := Unify(term.NewErr("Queue"), term.NewErr("Item")); !ok {
		t.Error("error =? error failed")
	}
	u, ok := Unify(qvar("q"), term.NewErr("Queue"))
	if !ok || !u["q"].IsErr() {
		t.Error("var =? error failed")
	}
	if _, ok := Unify(term.NewErr("Queue"), newQ()); ok {
		t.Error("error unified with non-error op")
	}
}

func TestRenameApart(t *testing.T) {
	tm := add(qvar("q"), ivar("i"))
	r := SuffixedVars(t, RenameApart(tm, 3))
	if r[0] != "q#3" || r[1] != "i#3" {
		t.Errorf("RenameApart = %v", r)
	}
	// No shared variables remain between the renamed copies.
	a := RenameApart(tm, 1)
	b := RenameApart(tm, 2)
	for _, va := range a.Vars() {
		if b.HasVar(va.Sym) {
			t.Error("renamed-apart terms share a variable")
		}
	}
}

// SuffixedVars extracts variable names in order.
func SuffixedVars(t *testing.T, tm *Term) []string {
	t.Helper()
	var out []string
	for _, v := range tm.Vars() {
		out = append(out, v.Sym)
	}
	return out
}

// Property: matching a pattern against its own instantiation recovers a
// substitution that maps the pattern back onto the instance.
func TestQuickMatchApplyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pat := add(qvar("q"), ivar("i"))
		inst := Subst{
			"q": randomGround(rng, 3),
			"i": atom(string(rune('a' + rng.Intn(3)))),
		}
		tm := inst.Apply(pat)
		m := TryMatch(pat, tm)
		if m == nil {
			return false
		}
		return m.Apply(pat).Equal(tm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomGround(rng *rand.Rand, depth int) *Term {
	if depth == 0 || rng.Intn(3) == 0 {
		return newQ()
	}
	return add(randomGround(rng, depth-1), atom(string(rune('a'+rng.Intn(3)))))
}
