// Hash-consing for the term algebra. An Interner owns a universe of
// canonical ("interned") terms in which structural equality coincides
// with pointer equality: interning the same shape twice returns the same
// *Term. This gives the rewrite engine an O(1) Equal on its hot path and
// a collision-proof identity key for its memo table — the memo was
// previously keyed on a raw structural hash, and a hash collision
// silently returned the wrong normal form.
//
// Interned terms are immutable like all terms, so they may be shared
// freely between goroutines; the Interner itself is safe for concurrent
// use and is shared by the Systems a parallel checker driver forks.
package term

import (
	"sync"
	"unsafe"

	"algspec/internal/sig"
)

// Interner hash-conses terms: canonical nodes are unique per structure,
// so two terms interned by the same Interner are structurally equal
// exactly when they are pointer-equal. The zero value is not usable;
// call NewInterner. All methods are safe for concurrent use.
type Interner struct {
	mu      sync.RWMutex
	buckets map[uint64][]*Term
	n       int
	// argChunk/argI bump-allocate argument vectors for CanonBatch
	// (guarded by mu; the vectors are retained by canonical nodes).
	argChunk []*Term
	argI     int
	// hashNode computes the bucket key of a prospective node whose
	// arguments are already canonical. Overridable by tests to force
	// bucket collisions (the regression test for the memo-collision bug);
	// collisions are always resolved by the structural scan in lookup, so
	// a colliding hash degrades speed, never correctness.
	hashNode func(k Kind, sym string, sort sig.Sort, args []*Term) uint64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		buckets:  make(map[uint64][]*Term),
		hashNode: defaultNodeHash,
	}
}

// defaultNodeHash is an FNV-1a over the node's own fields plus the
// identities of its (canonical) arguments. Argument pointers are a sound
// hash input because canonical arguments are unique per structure.
func defaultNodeHash(k Kind, sym string, sort sig.Sort, args []*Term) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(k)) * prime64
	for i := 0; i < len(sym); i++ {
		h = (h ^ uint64(sym[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	if k != Err { // all errors hash (and compare) alike at the node level
		for i := 0; i < len(sort); i++ {
			h = (h ^ uint64(sort[i])) * prime64
		}
	}
	for _, a := range args {
		// One multiplicative mix per (canonical, unique-per-structure)
		// child pointer: cheaper than byte-at-a-time FNV and still
		// well-distributed — collisions only degrade to the structural
		// scan in lookup.
		h = (h ^ uintptr2u64(a)) * prime64
		h ^= h >> 32
	}
	return h
}

// uintptr2u64 widens a term pointer to a hashable integer. The pointer
// value is the identity of a canonical node; it is only ever used
// in-process and never persisted.
func uintptr2u64(t *Term) uint64 {
	return uint64(uintptr(unsafe.Pointer(t)))
}

// nodeEq reports whether an existing canonical node has exactly the given
// shape. Arguments are compared by pointer: they are canonical, so
// pointer equality is structural equality.
func nodeEq(t *Term, k Kind, sym string, sort sig.Sort, args []*Term) bool {
	if t.Kind != k || len(t.Args) != len(args) {
		return false
	}
	if k != Err && (t.Sym != sym || t.Sort != sort) {
		return false
	}
	for i := range args {
		if t.Args[i] != args[i] {
			return false
		}
	}
	return true
}

// node interns one term node whose arguments are already canonical in
// this interner. When owned is true the args slice is transferred to the
// interner; otherwise it is copied before being retained.
func (in *Interner) node(k Kind, sym string, sort sig.Sort, args []*Term, owned bool) *Term {
	h := in.hashNode(k, sym, sort, args)
	in.mu.RLock()
	for _, c := range in.buckets[h] {
		if nodeEq(c, k, sym, sort, args) {
			in.mu.RUnlock()
			return c
		}
	}
	in.mu.RUnlock()

	in.mu.Lock()
	defer in.mu.Unlock()
	// Re-check: another goroutine may have interned the node between the
	// read unlock and the write lock.
	for _, c := range in.buckets[h] {
		if nodeEq(c, k, sym, sort, args) {
			return c
		}
	}
	if len(args) > 0 && !owned {
		cp := make([]*Term, len(args))
		copy(cp, args)
		args = cp
	}
	ground := k != Var
	for _, a := range args {
		if !a.ground {
			ground = false
			break
		}
	}
	t := &Term{Kind: k, Sym: sym, Sort: sort, Args: args, owner: in, ground: ground,
		shash: stableHashCanon(k, sym, sort, args)}
	in.buckets[h] = append(in.buckets[h], t)
	in.n++
	return t
}

// stableHashCanon computes the cached StableHash of a new canonical
// node whose arguments are already canonical (so their own stable
// hashes are cached). One multiplicative mix per child, no allocation.
func stableHashCanon(k Kind, sym string, sort sig.Sort, args []*Term) uint64 {
	if len(args) == 0 {
		return stableHashNode(k, sym, sort, nil)
	}
	h := stableHashNode(k, sym, sort, nil)
	const prime64 = 1099511628211
	for _, a := range args {
		h = (h ^ a.shash) * prime64
		h ^= h >> 32
	}
	return h
}

// canonArgs returns a canonical version of args, reusing the input slice
// contents when every element is already canonical. The returned bool
// reports whether the result is a fresh slice the interner may own.
func (in *Interner) canonArgs(args []*Term) ([]*Term, bool) {
	for i, a := range args {
		if a.owner == in {
			continue
		}
		cp := make([]*Term, len(args))
		copy(cp, args[:i])
		for j := i; j < len(args); j++ {
			cp[j] = in.Canon(args[j])
		}
		return cp, true
	}
	return args, false
}

// Op interns an operation application. Arguments from other interners (or
// none) are canonicalized first.
func (in *Interner) Op(name string, sort sig.Sort, args ...*Term) *Term {
	ca, owned := in.canonArgs(args)
	return in.node(Op, name, sort, ca, owned)
}

// OpTerms is Op taking an argument slice the interner may retain; callers
// must not reuse the slice afterwards. It exists so bulk generators can
// intern without a defensive copy per term.
func (in *Interner) OpTerms(name string, sort sig.Sort, args []*Term) *Term {
	ca, _ := in.canonArgs(args)
	return in.node(Op, name, sort, ca, true)
}

// Var interns a typed free variable.
func (in *Interner) Var(name string, sort sig.Sort) *Term {
	return in.node(Var, name, sort, nil, true)
}

// Atom interns an atom literal.
func (in *Interner) Atom(spelling string, sort sig.Sort) *Term {
	return in.node(Atom, spelling, sort, nil, true)
}

// Err interns the distinguished error value. The paper has a single
// error value, so all error nodes collapse onto one canonical node per
// interner regardless of the sort the error arose at (the node keeps the
// sort it was first interned with).
func (in *Interner) Err(sort sig.Sort) *Term {
	return in.node(Err, ErrName, sort, nil, true)
}

// If interns a conditional; its sort is the sort of the then-branch.
func (in *Interner) If(cond, then, els *Term) *Term {
	return in.Op(IfOp, then.Sort, cond, then, els)
}

// Bool interns the boolean constant for b.
func (in *Interner) Bool(b bool) *Term {
	if b {
		return in.node(Op, TrueOp, sig.BoolSort, nil, true)
	}
	return in.node(Op, FalseOp, sig.BoolSort, nil, true)
}

// Canon returns the canonical interned equivalent of t, interning every
// subterm. Terms already owned by this interner are returned unchanged in
// O(1); that makes Canon cheap on rewrite hot paths where results are
// built from interned pieces.
func (in *Interner) Canon(t *Term) *Term {
	if t == nil {
		return nil
	}
	if t.owner == in {
		return t
	}
	if len(t.Args) == 0 {
		return in.node(t.Kind, t.Sym, t.Sort, nil, true)
	}
	args := make([]*Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = in.Canon(a)
	}
	return in.node(t.Kind, t.Sym, t.Sort, args, true)
}

// CanonBatch is Canon for a whole engine result at once. With a nil
// cache it takes the interner's lock a single time and interns the
// entire term under it, instead of paying a reader-lock
// acquire/release (and, on every miss, a writer upgrade) per node. With
// a CanonCache — private to one System, hence lock-free — repeat shapes
// short-circuit before touching the interner at all: the rewrite
// engine's compiled tier rebuilds largely the same normal-form spines
// every call, and a cache hit replaces lock + hash + bucket probe with
// one indexed load and a structural verify. Argument vectors for new
// canonical nodes are bump-allocated from a shared chunk the interner
// retains (it would retain the vectors individually regardless).
func (in *Interner) CanonBatch(t *Term, cc *CanonCache) *Term {
	if t == nil || t.owner == in {
		return t
	}
	if cc != nil {
		return in.canonCached(t, cc)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.canonLocked(t)
}

// canonCacheSize is the entry count of a CanonCache (power of two).
const canonCacheSize = 2048

// CanonCache is a direct-mapped memo from node shape to canonical node,
// owned by a single goroutine (one per System). Entries are verified
// structurally on every hit, so a collision or stale slot can only cost
// a probe, never correctness; canonical nodes are immortal, so a cached
// pointer can never dangle.
type CanonCache struct {
	tab [canonCacheSize]*Term
	// stack is the reusable canonical-argument scratch: each recursion
	// level parks its children here, so the walk allocates nothing on
	// the all-hits path (the buffer is retained and grows to the widest
	// term seen).
	stack []*Term
}

// NewCanonCache returns an empty cache.
func NewCanonCache() *CanonCache { return &CanonCache{} }

// cacheIndex hashes a node shape to a cache slot. It mixes the sym
// string's data pointer rather than its bytes: the engine passes the
// same string header for the same symbol on every rebuild, and a
// different-header same-content collision merely misses into the
// interner path.
func cacheIndex(k Kind, sym string, sort sig.Sort, args []*Term) int {
	const m = 0x9E3779B97F4A7C15
	h := (uint64(uintptr(unsafe.Pointer(unsafe.StringData(sym)))) + uint64(k)) * m
	for _, a := range args {
		h = (h ^ uintptr2u64(a)) * m
		h ^= h >> 29
	}
	_ = sort
	return int(h>>32) & (canonCacheSize - 1)
}

// canonCached interns t bottom-up, consulting the cache per node and
// falling back to the interner's own (locked) single-node path on miss.
func (in *Interner) canonCached(t *Term, cc *CanonCache) *Term {
	if t.owner == in {
		return t
	}
	base := len(cc.stack)
	for _, a := range t.Args {
		if a.owner == in { // already canonical: skip the call
			cc.stack = append(cc.stack, a)
			continue
		}
		cc.stack = append(cc.stack, in.canonCached(a, cc))
	}
	args := cc.stack[base:]
	idx := cacheIndex(t.Kind, t.Sym, t.Sort, args)
	c := cc.tab[idx]
	if c == nil || !nodeEq(c, t.Kind, t.Sym, t.Sort, args) {
		// Miss: intern through the interner's own locked path (which
		// copies args — the stack slice is reused) and remember the
		// canonical node for next time.
		c = in.node(t.Kind, t.Sym, t.Sort, args, false)
		cc.tab[idx] = c
	}
	cc.stack = cc.stack[:base]
	return c
}

func (in *Interner) canonLocked(t *Term) *Term {
	if t.owner == in {
		return t
	}
	var args []*Term
	if n := len(t.Args); n > 0 {
		args = in.argAlloc(n)
		for i, a := range t.Args {
			args[i] = in.canonLocked(a)
		}
	}
	h := in.hashNode(t.Kind, t.Sym, t.Sort, args)
	for _, c := range in.buckets[h] {
		if nodeEq(c, t.Kind, t.Sym, t.Sort, args) {
			return c
		}
	}
	ground := t.Kind != Var
	for _, a := range args {
		if !a.ground {
			ground = false
			break
		}
	}
	nt := &Term{Kind: t.Kind, Sym: t.Sym, Sort: t.Sort, Args: args, owner: in, ground: ground,
		shash: stableHashCanon(t.Kind, t.Sym, t.Sort, args)}
	in.buckets[h] = append(in.buckets[h], nt)
	in.n++
	return nt
}

// argAlloc hands out an interner-owned argument vector from the current
// chunk (lock held). Vectors are retained forever by the canonical
// nodes they serve, so chunking just amortizes the allocations.
func (in *Interner) argAlloc(n int) []*Term {
	const chunk = 1024
	if n > chunk {
		return make([]*Term, n)
	}
	if len(in.argChunk)-in.argI < n {
		in.argChunk = make([]*Term, chunk)
		in.argI = 0
	}
	s := in.argChunk[in.argI : in.argI+n : in.argI+n]
	in.argI += n
	return s
}

// Size returns the number of canonical nodes interned so far.
func (in *Interner) Size() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.n
}

// Interned reports whether t is a canonical node of this interner.
func (in *Interner) Interned(t *Term) bool { return t != nil && t.owner == in }
