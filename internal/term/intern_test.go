package term

import (
	"fmt"
	"sync"
	"testing"

	"algspec/internal/sig"
)

func TestInternCanonicalizes(t *testing.T) {
	in := NewInterner()
	a := in.Op("add", "Queue", in.Op("new", "Queue"), in.Atom("x", "Item"))
	b := in.Op("add", "Queue", in.Op("new", "Queue"), in.Atom("x", "Item"))
	if a != b {
		t.Fatalf("structurally equal interned terms are not pointer-equal: %p vs %p", a, b)
	}
	c := in.Op("add", "Queue", in.Op("new", "Queue"), in.Atom("y", "Item"))
	if a == c {
		t.Fatal("distinct terms interned to the same node")
	}
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal disagrees with interned identity")
	}
}

func TestCanonOfExternalTerm(t *testing.T) {
	in := NewInterner()
	ext := NewOp("front", "Item", NewOp("add", "Queue", NewOp("new", "Queue"), NewAtom("x", "Item")))
	c1 := in.Canon(ext)
	c2 := in.Canon(ext)
	if c1 != c2 {
		t.Fatal("Canon is not canonical")
	}
	if !c1.Equal(ext) {
		t.Fatalf("Canon changed the term: %s vs %s", c1, ext)
	}
	if in.Canon(c1) != c1 {
		t.Fatal("Canon of an interned term must be the identity")
	}
	if !in.Interned(c1) || in.Interned(ext) {
		t.Fatal("Interned misreports ownership")
	}
}

// TestInternForcedCollision is the regression test for the memo-collision
// bug: before hash-consing, the rewrite memo was keyed on a raw uint64
// structural hash, so two distinct terms with colliding hashes silently
// shared a memo entry (wrong normal forms). The interner must resolve
// hash collisions structurally. We force every node into one bucket and
// verify distinct terms still get distinct canonical nodes.
func TestInternForcedCollision(t *testing.T) {
	in := NewInterner()
	in.hashNode = func(Kind, string, sig.Sort, []*Term) uint64 { return 42 }

	a := in.Op("front", "Item", in.Op("new", "Queue"))
	b := in.Op("remove", "Queue", in.Op("new", "Queue"))
	if a == b {
		t.Fatal("forced hash collision conflated two distinct terms")
	}
	if a.Equal(b) {
		t.Fatal("Equal conflated two distinct interned terms")
	}
	// Re-interning under the colliding hash still finds the right nodes.
	if in.Op("front", "Item", in.Op("new", "Queue")) != a {
		t.Fatal("collision bucket lost the first term")
	}
	if in.Op("remove", "Queue", in.Op("new", "Queue")) != b {
		t.Fatal("collision bucket lost the second term")
	}
	// A memo keyed on these canonical pointers can never cross wires the
	// way the old hash-keyed memo could.
	memo := map[*Term]string{a: "nf-of-a", b: "nf-of-b"}
	if memo[a] != "nf-of-a" || memo[b] != "nf-of-b" {
		t.Fatal("pointer-keyed memo entries collided")
	}
}

func TestInternErrCollapses(t *testing.T) {
	in := NewInterner()
	a := in.Err("Queue")
	b := in.Err("Item")
	if a != b {
		t.Fatal("error nodes must collapse onto one canonical node")
	}
	if !a.Equal(NewErr("Stack")) {
		t.Fatal("interned error must equal uninterned error")
	}
}

func TestInternGroundCache(t *testing.T) {
	in := NewInterner()
	g := in.Op("add", "Queue", in.Op("new", "Queue"), in.Atom("x", "Item"))
	if !g.IsGround() {
		t.Fatal("ground interned term reported non-ground")
	}
	v := in.Op("add", "Queue", in.Var("q", "Queue"), in.Atom("x", "Item"))
	if v.IsGround() {
		t.Fatal("open interned term reported ground")
	}
	if in.Bool(true) != in.Bool(true) || in.Bool(true) == in.Bool(false) {
		t.Fatal("Bool interning broken")
	}
	iff := in.If(in.Bool(true), g, g)
	if !iff.IsIf() || iff.Sort != "Queue" {
		t.Fatalf("If interned wrongly: %#v", iff)
	}
}

func TestInternCrossInternerEqual(t *testing.T) {
	in1, in2 := NewInterner(), NewInterner()
	a := in1.Op("add", "Queue", in1.Op("new", "Queue"), in1.Atom("x", "Item"))
	b := in2.Op("add", "Queue", in2.Op("new", "Queue"), in2.Atom("x", "Item"))
	if a == b {
		t.Fatal("different interners produced the same pointer")
	}
	if !a.Equal(b) {
		t.Fatal("cross-interner Equal must fall back to structural comparison")
	}
}

func TestInternConcurrent(t *testing.T) {
	in := NewInterner()
	var wg sync.WaitGroup
	out := make([][]*Term, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tm := in.Op("add", "Queue",
					in.Op("new", "Queue"),
					in.Atom(fmt.Sprintf("x%d", i%17), "Item"))
				out[w] = append(out[w], tm)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range out[w] {
			if out[w][i] != out[0][i] {
				t.Fatalf("worker %d item %d interned to a different node", w, i)
			}
		}
	}
	if in.Size() != 1+17+17 { // new + 17 atoms + 17 adds
		t.Fatalf("interner size = %d, want 35", in.Size())
	}
}
