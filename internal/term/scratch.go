// Arena is the scratch-term allocator behind the rewrite engine's
// compiled tier. Intermediate terms of a normalization are dead the
// moment the normal form is returned, so allocating them one GC object
// at a time (the interpreter's costume) wastes both allocator time and
// collector work. An Arena instead bump-allocates nodes and argument
// vectors out of reusable chunks; the engine builds every intermediate
// result here, mutates them in place where ownership rules allow, and
// interns only the final normal form (Interner.Canon) before handing it
// out. Reset then recycles every chunk for the next normalization.
//
// Ownership discipline — the scratch/interned boundary:
//
//   - a scratch node (Term.Scratch() == true) belongs to exactly one
//     Arena and therefore to exactly one System; it must never be
//     returned to a caller, stored in a memo, or stamped with an nfTag;
//   - scratch nodes may point at interned terms freely (the common case:
//     captured subterms of a redex are already canonical or were
//     normalized first), but nothing durable may point at a scratch node;
//   - Reset recycles chunk memory, so any scratch pointer held across a
//     Reset is a use-after-free bug; Detach is the escape hatch for
//     error paths that must surrender a scratch term to an error value —
//     it abandons the chunks instead of recycling them, trading a little
//     garbage for referential safety on a path that is cold by
//     definition.
//
// An Arena is not safe for concurrent use; like the System that owns
// it, each goroutine forks its own.
package term

import "algspec/internal/sig"

const (
	arenaNodeChunk = 512  // Terms per node chunk
	arenaArgChunk  = 1024 // arg-slice capacity per pointer chunk
)

// Arena bump-allocates scratch terms. The zero value is ready to use.
type Arena struct {
	nodeChunks [][]Term
	argChunks  [][]*Term
	nc, ni     int // current node chunk / next free node index
	ac, ai     int // current arg chunk / next free pointer index
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// node hands out one scratch Term. The node may be recycled memory, so
// callers overwrite every field (the constructors below assign a whole
// struct literal for exactly that reason — a stale nfTag from a prior
// life would be read as "already normal").
func (a *Arena) node() *Term {
	if a.nc == len(a.nodeChunks) {
		a.nodeChunks = append(a.nodeChunks, make([]Term, arenaNodeChunk))
	}
	c := a.nodeChunks[a.nc]
	t := &c[a.ni]
	if a.ni++; a.ni == len(c) {
		a.nc++
		a.ni = 0
	}
	return t
}

// ArgSlice hands out an argument vector of length n from the pointer
// chunks (oversized requests fall back to the heap — they are as rare
// as 1024-ary operations).
func (a *Arena) ArgSlice(n int) []*Term {
	if n == 0 {
		return nil
	}
	if n > arenaArgChunk {
		return make([]*Term, n)
	}
	if a.ac < len(a.argChunks) && a.ai+n > len(a.argChunks[a.ac]) {
		a.ac++
		a.ai = 0
	}
	if a.ac == len(a.argChunks) {
		a.argChunks = append(a.argChunks, make([]*Term, arenaArgChunk))
	}
	c := a.argChunks[a.ac]
	s := c[a.ai : a.ai+n : a.ai+n]
	a.ai += n
	return s
}

// Op builds a scratch operation application. The args slice is retained
// (pass an ArgSlice or a slice the caller surrenders). Every field is
// assigned — nodes are recycled memory, and a stale nfTag or owner from
// a previous life must never survive into a new term. Pointer-carrying
// fields are assigned through setPtr/setArgs, which skip the store when
// the recycled slot already holds the identical value: a steady-state
// workload rebuilds the same scratch shapes into the same slots every
// cycle, and the skipped stores are skipped GC write barriers.
func (a *Arena) Op(sym string, sort sig.Sort, args []*Term) *Term {
	t := a.node()
	t.Kind = Op
	setPtr(&t.Sym, sym)
	setPtr(&t.Sort, sort)
	setArgs(t, args)
	if t.owner != nil {
		t.owner = nil
	}
	t.ground = false
	t.scratch = true
	t.hint = 0
	t.nfTag = 0
	return t
}

// setPtr stores s into *p unless it is already there. The equality
// check hits the pointer-identity fast path for the interned rule
// strings the engine passes, making the recycled-slot case branch-only.
func setPtr[T ~string](p *T, s T) {
	if *p != s {
		*p = s
	}
}

// setArgs replaces t's argument vector unless the recycled slot already
// holds the very same vector (same base, length and capacity).
func setArgs(t *Term, args []*Term) {
	if len(t.Args) != len(args) || cap(t.Args) != cap(args) ||
		(len(args) != 0 && &t.Args[0] != &args[0]) {
		t.Args = args
	}
}

// CopyOp builds a scratch copy of an operation node with a fresh,
// mutable argument vector — the copy-on-write step that turns a shared
// (interned or caller-owned) term into an engine-private one.
func (a *Arena) CopyOp(t *Term) *Term {
	args := a.ArgSlice(len(t.Args))
	copy(args, t.Args)
	return a.Op(t.Sym, t.Sort, args)
}

// Err builds the scratch error value at the given sort.
func (a *Arena) Err(sort sig.Sort) *Term {
	t := a.node()
	t.Kind = Err
	setPtr(&t.Sym, ErrName)
	setPtr(&t.Sort, sort)
	if t.Args != nil {
		t.Args = nil
	}
	if t.owner != nil {
		t.owner = nil
	}
	t.ground = false
	t.scratch = true
	t.hint = 0
	t.nfTag = 0
	return t
}

// If builds a scratch conditional with an explicit result sort.
func (a *Arena) If(sort sig.Sort, cond, then, els *Term) *Term {
	args := a.ArgSlice(3)
	args[0], args[1], args[2] = cond, then, els
	return a.Op(IfOp, sort, args)
}

// Reset recycles every chunk: all scratch terms handed out since the
// last Reset are dead and their memory is reused verbatim. Only call
// when nothing references the arena's terms any more — for the engine,
// after the normal form has been interned.
func (a *Arena) Reset() {
	a.nc, a.ni = 0, 0
	a.ac, a.ai = 0, 0
}

// Detach abandons the current chunks instead of recycling them: terms
// already handed out stay valid forever (ordinary GC memory), and the
// arena starts over with fresh chunks. Error paths use this when a
// scratch term escapes inside an error value (ErrFuel.Last), where a
// later Reset would otherwise scribble over it.
func (a *Arena) Detach() {
	a.nodeChunks, a.argChunks = nil, nil
	a.Reset()
}
