package term

import (
	"fmt"
	"testing"

	"algspec/internal/sig"
)

const testSort = sig.Sort("T")

// TestArenaResetReusesMemory pins the recycling contract: after Reset,
// the arena hands out the very same node and argument-vector memory, and
// every field of a recycled node is freshly assigned — no stale nfTag,
// hint, owner or scratch flag survives a previous life.
func TestArenaResetReusesMemory(t *testing.T) {
	a := NewArena()
	args := a.ArgSlice(2)
	args[0], args[1] = NewAtom("x", testSort), NewAtom("y", testSort)
	n1 := a.Op("f", testSort, args)
	n1.SetHint(7)
	n1.MarkNormalTag(42)

	a.Reset()
	args2 := a.ArgSlice(2)
	n2 := a.Op("g", testSort, args2)
	if n1 != n2 {
		t.Fatalf("Reset did not recycle node memory: %p vs %p", n1, n2)
	}
	if &args[0] != &args2[0] {
		t.Fatalf("Reset did not recycle arg-vector memory")
	}
	if n2.Sym != "g" {
		t.Errorf("recycled node kept stale symbol %q", n2.Sym)
	}
	if n2.Hint() != 0 {
		t.Errorf("recycled node kept stale hint %d", n2.Hint())
	}
	if n2.NormalTag() != 0 {
		t.Errorf("recycled node kept stale nfTag %d — would masquerade as already-normal", n2.NormalTag())
	}
	if !n2.Scratch() {
		t.Errorf("arena node not marked scratch")
	}
}

// TestArenaDetachPreservesEscapedTerms pins the error-path escape hatch:
// terms handed out before Detach stay valid after the arena moves on,
// where a Reset would have scribbled over them.
func TestArenaDetachPreservesEscapedTerms(t *testing.T) {
	a := NewArena()
	escaped := a.Op("keep", testSort, nil)
	a.Detach()
	fresh := a.Op("fresh", testSort, nil)
	if escaped == fresh {
		t.Fatalf("Detach recycled memory an escaped term still references")
	}
	if escaped.Sym != "keep" {
		t.Errorf("escaped term corrupted: %q", escaped.Sym)
	}
}

// TestArenaArgSliceOversize pins the fallback for argument vectors wider
// than a chunk: they come from the heap, not a chunk, and later chunked
// allocations are unaffected.
func TestArenaArgSliceOversize(t *testing.T) {
	a := NewArena()
	big := a.ArgSlice(arenaArgChunk + 1)
	if len(big) != arenaArgChunk+1 {
		t.Fatalf("oversize ArgSlice has length %d", len(big))
	}
	small := a.ArgSlice(3)
	if len(small) != 3 {
		t.Fatalf("chunked ArgSlice after oversize has length %d", len(small))
	}
	if a.ArgSlice(0) != nil {
		t.Errorf("zero-length ArgSlice should be nil")
	}
}

// TestArenaChunkGrowth crosses the node- and arg-chunk boundaries and
// checks every node stays distinct and intact.
func TestArenaChunkGrowth(t *testing.T) {
	a := NewArena()
	seen := make(map[*Term]bool)
	for i := 0; i < arenaNodeChunk*2+10; i++ {
		n := a.Op(fmt.Sprintf("op%d", i%13), testSort, a.ArgSlice(1))
		if seen[n] {
			t.Fatalf("node %d: arena handed out live memory twice", i)
		}
		seen[n] = true
	}
}

// TestCanonBatchMatchesCanon pins the cached batch-interning path (the
// compiled tier's Canon boundary) against plain Canon: same canonical
// node, for scratch inputs, interned inputs and mixed spines, across
// repeated calls that exercise both cache hits and misses.
func TestCanonBatchMatchesCanon(t *testing.T) {
	in := NewInterner()
	cc := NewCanonCache()
	a := NewArena()

	build := func(depth int, tag string) *Term {
		cur := in.Canon(NewAtom(tag, testSort))
		for i := 0; i < depth; i++ {
			args := a.ArgSlice(1)
			args[0] = cur
			cur = a.Op("s", testSort, args)
			if i%2 == 1 {
				// Mixed spine: intern some levels so the walk crosses the
				// owned/foreign boundary both ways.
				cur = in.Canon(cur)
			}
		}
		return cur
	}

	for round := 0; round < 3; round++ {
		for depth := 0; depth < 6; depth++ {
			scratch := build(depth, "z")
			got := in.CanonBatch(scratch, cc)
			want := in.Canon(cloneTerm(scratch))
			if got != want {
				t.Fatalf("round %d depth %d: CanonBatch %p != Canon %p (%s vs %s)",
					round, depth, got, want, got, want)
			}
			if !in.Interned(got) {
				t.Fatalf("round %d depth %d: CanonBatch result not interned", round, depth)
			}
		}
		a.Reset()
	}

	// nil cache must fall back to the locked path, same answer.
	scratch := build(3, "w")
	if got, want := in.CanonBatch(scratch, nil), in.Canon(cloneTerm(scratch)); got != want {
		t.Fatalf("nil-cache CanonBatch diverged: %s vs %s", got, want)
	}
}

// TestCanonCacheCollision forces two shapes onto the same cache line and
// checks the verify-on-hit logic never returns the wrong node.
func TestCanonCacheCollision(t *testing.T) {
	in := NewInterner()
	cc := NewCanonCache()
	x := in.Canon(NewAtom("x", testSort))
	// Same symbol, same child, alternating arity: every lookup verifies
	// structure, so even a guaranteed index collision (same sym pointer,
	// same child pointer) returns the right canonical node.
	f1 := NewOp("f", testSort, x)
	f2 := NewOp("f", testSort, x, x)
	c1 := in.CanonBatch(f1, cc)
	c2 := in.CanonBatch(f2, cc)
	if c1 == c2 {
		t.Fatalf("distinct shapes interned to one node")
	}
	if in.CanonBatch(NewOp("f", testSort, x), cc) != c1 {
		t.Errorf("re-canon of arity-1 shape drifted")
	}
	if in.CanonBatch(NewOp("f", testSort, x, x), cc) != c2 {
		t.Errorf("re-canon of arity-2 shape drifted")
	}
}

// cloneTerm deep-copies a term into plain heap nodes, so Canon sees a
// fresh foreign spine (CanonBatch may have mutated nothing, but the
// original spine's nodes could be arena memory a later Reset reuses).
func cloneTerm(t *Term) *Term {
	args := make([]*Term, len(t.Args))
	for i, a := range t.Args {
		args[i] = cloneTerm(a)
	}
	c := &Term{Kind: t.Kind, Sym: t.Sym, Sort: t.Sort, Args: args}
	return c
}
