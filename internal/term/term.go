// Package term implements the term algebra underlying algebraic
// specifications: the words of the heterogeneous algebra built from
// operation applications, typed free variables (the paper's "q" and "i"),
// atom literals, and the distinguished error value whose defining property
// is strictness — "the value of any operation applied to an argument list
// containing error is error" (CACM 20(6) §3).
//
// The conditional used throughout the paper's axioms
// ("if IS_EMPTY?(q) then i else FRONT(q)") is represented as a term with
// the reserved head IfOp; the rewrite engine gives it its usual lazy
// semantics.
package term

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"algspec/internal/sig"
)

// Kind discriminates the four term shapes.
type Kind uint8

const (
	// Op is an operation application f(t1,...,tn); constants are nullary
	// applications.
	Op Kind = iota
	// Var is a typed free variable, used in axioms.
	Var
	// Atom is a literal constant of an atom sort, written 'x in the
	// surface syntax. Atoms are self-interpreting: two atoms are equal
	// exactly when their spellings are equal (the engine's native
	// realization of IS_SAME?).
	Atom
	// Err is the distinguished error value.
	Err
)

// Reserved head symbols.
const (
	// IfOp is the reserved head of the conditional special form.
	// Args are [cond, then, else].
	IfOp = "if"
	// ErrName is the spelling of the error value.
	ErrName = "error"
	// TrueOp and FalseOp are the boolean constants every specification
	// may rely on (the Bool specification declares them).
	TrueOp  = "true"
	FalseOp = "false"
)

// Term is an immutable first-order term. Clients must not mutate a Term
// after construction; the engine shares subterms freely.
type Term struct {
	Kind Kind
	// Sym is the operation name (Kind Op), variable name (Kind Var), or
	// atom spelling without the quote (Kind Atom). Empty for Err.
	Sym string
	// Sort is the sort of the whole term. For Err the sort records the
	// context the error arose in; error terms of different sorts are
	// still equal, matching the paper's single distinguished value.
	Sort sig.Sort
	Args []*Term

	// owner is the Interner this term is a canonical node of, or nil for
	// terms built with the New* constructors or struct literals. Within
	// one interner, structural equality is pointer equality (errors
	// excepted), which Equal exploits.
	owner *Interner
	// ground caches IsGround for interned nodes (computed once at intern
	// time from the canonical arguments).
	ground bool
	// scratch marks a node allocated from an Arena: engine-private,
	// mutable by its owning engine, and never valid outside the
	// normalization that built it. The rewrite engine must Canon a result
	// before returning it; Scratch exposes the flag so tests (and the
	// Canon boundary itself) can enforce that no scratch node escapes.
	scratch bool
	// hint is an opaque per-node cache for the engine that owns a scratch
	// node (the rewrite machine stores a precomputed dispatch index here
	// to skip a per-node map lookup). Zero means no hint; interned terms
	// never carry one.
	hint uint32
	// shash caches StableHash for interned nodes, computed once at
	// intern time from the canonical arguments' cached hashes. Zero for
	// non-interned terms (which recompute per call).
	shash uint64
	// nfTag is an advisory normal-form mark: a rewrite system stamps its
	// generation token here once the term is known to be its own normal
	// form under that system's (immutable) rule program. Accessed
	// atomically because parallel workers share subterm spines; a stale
	// or foreign token is merely a cache miss, never an error. Only
	// interned terms are ever stamped: scratch nodes are recycled by
	// Arena.Reset, so a tag on one would outlive the term it described.
	nfTag uint32
}

// Hint reads the engine hint cached on a scratch node (see SetHint).
func (t *Term) Hint() uint32 { return t.hint }

// SetHint caches an opaque engine value on a scratch node. Only the
// engine owning the node's Arena may call it; interned terms are shared
// and must never be hinted.
func (t *Term) SetHint(h uint32) { t.hint = h }

// Scratch reports whether the node was allocated from an Arena and is
// therefore engine-private (see Arena). Interned terms and terms built
// with the New* constructors are never scratch.
func (t *Term) Scratch() bool { return t.scratch }

// NormalTag reads the advisory normal-form token (see MarkNormalTag).
func (t *Term) NormalTag() uint32 { return atomic.LoadUint32(&t.nfTag) }

// MarkNormalTag stamps the advisory normal-form token. Only the rewrite
// engine should call this, with a token unique to one compiled system.
func (t *Term) MarkNormalTag(tag uint32) { atomic.StoreUint32(&t.nfTag, tag) }

// NewOp builds an operation application.
func NewOp(name string, sort sig.Sort, args ...*Term) *Term {
	return &Term{Kind: Op, Sym: name, Sort: sort, Args: args}
}

// NewVar builds a typed free variable.
func NewVar(name string, sort sig.Sort) *Term {
	return &Term{Kind: Var, Sym: name, Sort: sort}
}

// NewAtom builds an atom literal of the given atom sort.
func NewAtom(spelling string, sort sig.Sort) *Term {
	return &Term{Kind: Atom, Sym: spelling, Sort: sort}
}

// NewErr builds the distinguished error value at the given sort.
func NewErr(sort sig.Sort) *Term {
	return &Term{Kind: Err, Sym: ErrName, Sort: sort}
}

// NewIf builds a conditional term; its sort is the sort of the branches.
func NewIf(cond, then, els *Term) *Term {
	return &Term{Kind: Op, Sym: IfOp, Sort: then.Sort, Args: []*Term{cond, then, els}}
}

// True and False build the boolean constants.
func True() *Term  { return NewOp(TrueOp, sig.BoolSort) }
func False() *Term { return NewOp(FalseOp, sig.BoolSort) }

// Bool builds true or false from a Go bool.
func Bool(b bool) *Term {
	if b {
		return True()
	}
	return False()
}

// IsErr reports whether the term is the error value.
func (t *Term) IsErr() bool { return t.Kind == Err }

// IsIf reports whether the term is a conditional.
func (t *Term) IsIf() bool { return t.Kind == Op && t.Sym == IfOp }

// IsTrue and IsFalse report whether the term is the respective boolean
// constant.
func (t *Term) IsTrue() bool  { return t.Kind == Op && t.Sym == TrueOp && len(t.Args) == 0 }
func (t *Term) IsFalse() bool { return t.Kind == Op && t.Sym == FalseOp && len(t.Args) == 0 }

// Equal reports structural equality. Error terms are equal regardless of
// the sort they were created at: the paper has a single error value.
// When both terms are canonical nodes of the same Interner, equality is
// decided by pointer comparison in O(1).
func (t *Term) Equal(u *Term) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil {
		return false
	}
	if t.Kind != u.Kind {
		return false
	}
	if t.Kind == Err {
		return true
	}
	if t.owner != nil && t.owner == u.owner {
		// Same interner, different pointers: structurally distinct.
		return false
	}
	switch t.Kind {
	case Var, Atom:
		return t.Sym == u.Sym && t.Sort == u.Sort
	default:
		if t.Sym != u.Sym || len(t.Args) != len(u.Args) {
			return false
		}
		for i := range t.Args {
			if !t.Args[i].Equal(u.Args[i]) {
				return false
			}
		}
		return true
	}
}

// Hash returns a structural hash consistent with Equal.
func (t *Term) Hash() uint64 {
	h := fnv.New64a()
	t.hashInto(h)
	return h.Sum64()
}

// StableHash returns a structural hash consistent with Equal that is
// stable across processes and executions: it mixes only the node's own
// bytes (kind, symbol, and — for variables and atoms — sort) with its
// children's stable hashes, never pointers or map iteration order. The
// cluster router derives shard keys from it, so two replicas (or a
// router and a replica) computing the key for the same term must agree
// even though their interners hand out different pointers. For interned
// terms the value is computed once at intern time and answered in O(1);
// other terms pay one structural walk per call.
func (t *Term) StableHash() uint64 {
	if t.owner != nil {
		return t.shash
	}
	return stableHashTerm(t)
}

// stableHashNode combines a node's own bytes with already-computed
// child hashes. Mirrors hashInto's structure (Err nodes all hash alike;
// Op nodes ignore sort, like Equal does) with an FNV-1a-style mix.
func stableHashNode(k Kind, sym string, sort sig.Sort, childHashes []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(k)) * prime64
	if k != Err {
		for i := 0; i < len(sym); i++ {
			h = (h ^ uint64(sym[i])) * prime64
		}
		h = (h ^ 0xfe) * prime64
		if k == Var || k == Atom {
			for i := 0; i < len(sort); i++ {
				h = (h ^ uint64(sort[i])) * prime64
			}
		}
	}
	for _, ch := range childHashes {
		h = (h ^ ch) * prime64
		h ^= h >> 32
	}
	return h
}

func stableHashTerm(t *Term) uint64 {
	if t.owner != nil {
		return t.shash
	}
	var childHashes []uint64
	if len(t.Args) > 0 {
		childHashes = make([]uint64, len(t.Args))
		for i, a := range t.Args {
			childHashes[i] = stableHashTerm(a)
		}
	}
	return stableHashNode(t.Kind, t.Sym, t.Sort, childHashes)
}

type hashWriter interface{ Write([]byte) (int, error) }

func (t *Term) hashInto(h hashWriter) {
	var kind [1]byte
	kind[0] = byte(t.Kind)
	h.Write(kind[:])
	switch t.Kind {
	case Err:
		// All errors hash alike.
	case Var, Atom:
		h.Write([]byte(t.Sym))
		h.Write([]byte{0})
		h.Write([]byte(t.Sort))
	default:
		h.Write([]byte(t.Sym))
		h.Write([]byte{0, byte(len(t.Args))})
		for _, a := range t.Args {
			a.hashInto(h)
		}
	}
}

// Size returns the number of nodes in the term.
func (t *Term) Size() int {
	n := 1
	for _, a := range t.Args {
		n += a.Size()
	}
	return n
}

// Depth returns the height of the term; constants have depth 1.
func (t *Term) Depth() int {
	d := 0
	for _, a := range t.Args {
		if ad := a.Depth(); ad > d {
			d = ad
		}
	}
	return d + 1
}

// IsGround reports whether the term contains no variables. For interned
// terms the answer is cached at intern time and returned in O(1).
func (t *Term) IsGround() bool {
	if t.owner != nil {
		return t.ground
	}
	if t.Kind == Var {
		return false
	}
	for _, a := range t.Args {
		if !a.IsGround() {
			return false
		}
	}
	return true
}

// Vars returns the distinct variables of the term in first-occurrence
// order (leftmost-innermost).
func (t *Term) Vars() []*Term {
	var out []*Term
	seen := make(map[string]bool)
	t.Walk(func(u *Term) bool {
		if u.Kind == Var && !seen[u.Sym] {
			seen[u.Sym] = true
			out = append(out, u)
		}
		return true
	})
	return out
}

// HasVar reports whether the named variable occurs in the term.
func (t *Term) HasVar(name string) bool {
	found := false
	t.Walk(func(u *Term) bool {
		if u.Kind == Var && u.Sym == name {
			found = true
			return false
		}
		return !found
	})
	return found
}

// Walk visits the term preorder. If f returns false the walk does not
// descend into the current term's arguments.
func (t *Term) Walk(f func(*Term) bool) {
	if !f(t) {
		return
	}
	for _, a := range t.Args {
		a.Walk(f)
	}
}

// Subterms returns every subterm, preorder, including t itself.
func (t *Term) Subterms() []*Term {
	var out []*Term
	t.Walk(func(u *Term) bool {
		out = append(out, u)
		return true
	})
	return out
}

// Path addresses a subterm by argument indices from the root.
type Path []int

// At returns the subterm at the path, or nil if the path is invalid.
func (t *Term) At(p Path) *Term {
	cur := t
	for _, i := range p {
		if cur == nil || i < 0 || i >= len(cur.Args) {
			return nil
		}
		cur = cur.Args[i]
	}
	return cur
}

// ReplaceAt returns a copy of t with the subterm at path p replaced by u.
// Unaffected subtrees are shared, not copied. An invalid path returns nil.
func (t *Term) ReplaceAt(p Path, u *Term) *Term {
	if len(p) == 0 {
		return u
	}
	i := p[0]
	if i < 0 || i >= len(t.Args) {
		return nil
	}
	child := t.Args[i].ReplaceAt(p[1:], u)
	if child == nil {
		return nil
	}
	args := make([]*Term, len(t.Args))
	copy(args, t.Args)
	args[i] = child
	return &Term{Kind: t.Kind, Sym: t.Sym, Sort: t.Sort, Args: args}
}

// Positions returns the paths of all subterms, preorder. The root is the
// empty path.
func (t *Term) Positions() []Path {
	var out []Path
	var rec func(u *Term, p Path)
	rec = func(u *Term, p Path) {
		cp := make(Path, len(p))
		copy(cp, p)
		out = append(out, cp)
		for i, a := range u.Args {
			rec(a, append(p, i))
		}
	}
	rec(t, nil)
	return out
}

// Rename returns a copy of the term with every variable name passed
// through f (sharing is broken only along paths containing variables).
func (t *Term) Rename(f func(string) string) *Term {
	switch t.Kind {
	case Var:
		return NewVar(f(t.Sym), t.Sort)
	case Atom, Err:
		return t
	default:
		changed := false
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = a.Rename(f)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return t
		}
		return &Term{Kind: t.Kind, Sym: t.Sym, Sort: t.Sort, Args: args}
	}
}

// String renders the term in the surface syntax: f(a, b), 'atom, error,
// variables bare, and conditionals as "if c then a else b".
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *Term) write(b *strings.Builder) {
	switch t.Kind {
	case Err:
		b.WriteString(ErrName)
	case Var:
		b.WriteString(t.Sym)
	case Atom:
		b.WriteByte('\'')
		b.WriteString(t.Sym)
	default:
		if t.IsIf() && len(t.Args) == 3 {
			b.WriteString("if ")
			t.Args[0].write(b)
			b.WriteString(" then ")
			t.Args[1].write(b)
			b.WriteString(" else ")
			t.Args[2].write(b)
			return
		}
		b.WriteString(t.Sym)
		if len(t.Args) == 0 {
			return
		}
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.write(b)
		}
		b.WriteByte(')')
	}
}

// GoString renders the term unambiguously for debugging, with sorts.
func (t *Term) GoString() string {
	switch t.Kind {
	case Err:
		return fmt.Sprintf("error:%s", t.Sort)
	case Var:
		return fmt.Sprintf("%s:%s", t.Sym, t.Sort)
	case Atom:
		return fmt.Sprintf("'%s:%s", t.Sym, t.Sort)
	default:
		if len(t.Args) == 0 {
			return fmt.Sprintf("%s:%s", t.Sym, t.Sort)
		}
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = a.GoString()
		}
		return fmt.Sprintf("%s(%s):%s", t.Sym, strings.Join(parts, ", "), t.Sort)
	}
}

// Compare imposes a total order on terms (by kind, then symbol, then
// args). It exists so reports and golden tests can sort term lists
// deterministically.
func Compare(a, b *Term) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if a.Kind == Err {
		return 0
	}
	if c := strings.Compare(a.Sym, b.Sym); c != 0 {
		return c
	}
	if c := len(a.Args) - len(b.Args); c != 0 {
		return c
	}
	for i := range a.Args {
		if c := Compare(a.Args[i], b.Args[i]); c != 0 {
			return c
		}
	}
	return strings.Compare(string(a.Sort), string(b.Sort))
}

// SortTerms sorts a slice of terms in Compare order, in place.
func SortTerms(ts []*Term) {
	sort.Slice(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 })
}

// FreshName returns a variable name not used in any of the given terms,
// derived from base (base, base1, base2, ...).
func FreshName(base string, avoid ...*Term) string {
	used := make(map[string]bool)
	for _, t := range avoid {
		t.Walk(func(u *Term) bool {
			if u.Kind == Var {
				used[u.Sym] = true
			}
			return true
		})
	}
	if !used[base] {
		return base
	}
	for i := 1; ; i++ {
		name := base + strconv.Itoa(i)
		if !used[name] {
			return name
		}
	}
}
