package term

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// Builders used throughout the tests.
func newQ() *Term           { return NewOp("new", "Queue") }
func add(q, i *Term) *Term  { return NewOp("add", "Queue", q, i) }
func atom(s string) *Term   { return NewAtom(s, "Item") }
func qvar(n string) *Term   { return NewVar(n, "Queue") }
func front(q *Term) *Term   { return NewOp("front", "Item", q) }
func isEmpty(q *Term) *Term { return NewOp("isEmpty?", "Bool", q) }

func TestEqual(t *testing.T) {
	a := add(newQ(), atom("x"))
	b := add(newQ(), atom("x"))
	if !a.Equal(b) {
		t.Error("structurally equal terms not Equal")
	}
	if a.Equal(add(newQ(), atom("y"))) {
		t.Error("different atoms Equal")
	}
	if a.Equal(newQ()) {
		t.Error("different shapes Equal")
	}
	if !a.Equal(a) {
		t.Error("not reflexive")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil) true")
	}
	// Errors are equal regardless of sort.
	if !NewErr("Queue").Equal(NewErr("Item")) {
		t.Error("errors of different sorts not Equal")
	}
	// Vars compare by name and sort.
	if qvar("q").Equal(NewVar("q", "Item")) {
		t.Error("same-name different-sort vars Equal")
	}
	if !qvar("q").Equal(qvar("q")) {
		t.Error("same vars not Equal")
	}
	// Atoms compare by spelling and sort.
	if atom("x").Equal(NewAtom("x", "Identifier")) {
		t.Error("same-spelling different-sort atoms Equal")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := randomTerm(rng, 4)
		b := randomTerm(rng, 4)
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatalf("equal terms with different hashes: %s", a)
		}
	}
	// Same term built twice hashes identically.
	if add(newQ(), atom("x")).Hash() != add(newQ(), atom("x")).Hash() {
		t.Error("hash not deterministic")
	}
	if NewErr("A").Hash() != NewErr("B").Hash() {
		t.Error("error hashes differ across sorts")
	}
}

// randomTerm builds a random Queue-ish term.
func randomTerm(rng *rand.Rand, depth int) *Term {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return newQ()
		case 1:
			return atom(string(rune('a' + rng.Intn(3))))
		default:
			return NewErr("Queue")
		}
	}
	switch rng.Intn(3) {
	case 0:
		return add(randomTerm(rng, depth-1), atom(string(rune('a'+rng.Intn(3)))))
	case 1:
		return NewOp("remove", "Queue", randomTerm(rng, depth-1))
	default:
		return NewIf(isEmpty(randomTerm(rng, depth-1)), randomTerm(rng, depth-1), randomTerm(rng, depth-1))
	}
}

func TestSizeDepth(t *testing.T) {
	if newQ().Size() != 1 || newQ().Depth() != 1 {
		t.Error("constant size/depth wrong")
	}
	tm := add(add(newQ(), atom("x")), atom("y"))
	if tm.Size() != 5 {
		t.Errorf("Size = %d, want 5", tm.Size())
	}
	if tm.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", tm.Depth())
	}
}

func TestGroundAndVars(t *testing.T) {
	g := add(newQ(), atom("x"))
	if !g.IsGround() {
		t.Error("ground term not ground")
	}
	v := add(qvar("q"), NewVar("i", "Item"))
	if v.IsGround() {
		t.Error("open term ground")
	}
	vars := v.Vars()
	if len(vars) != 2 || vars[0].Sym != "q" || vars[1].Sym != "i" {
		t.Errorf("Vars = %v", vars)
	}
	// Duplicates are reported once, first occurrence order.
	dup := add(add(qvar("q"), NewVar("i", "Item")), NewVar("i", "Item"))
	if got := dup.Vars(); len(got) != 2 {
		t.Errorf("Vars dedup = %v", got)
	}
	if !v.HasVar("q") || v.HasVar("zz") {
		t.Error("HasVar wrong")
	}
}

func TestPathsAndReplace(t *testing.T) {
	tm := add(add(newQ(), atom("x")), atom("y"))
	if got := tm.At(Path{0, 1}); !got.Equal(atom("x")) {
		t.Errorf("At([0 1]) = %v", got)
	}
	if tm.At(Path{5}) != nil {
		t.Error("invalid path not nil")
	}
	rep := tm.ReplaceAt(Path{0, 1}, atom("z"))
	if !rep.At(Path{0, 1}).Equal(atom("z")) {
		t.Error("ReplaceAt did not replace")
	}
	// Original is untouched (persistence).
	if !tm.At(Path{0, 1}).Equal(atom("x")) {
		t.Error("ReplaceAt mutated original")
	}
	// Unaffected branches are shared.
	if rep.Args[1] != tm.Args[1] {
		t.Error("ReplaceAt copied unaffected branch")
	}
	if tm.ReplaceAt(Path{9}, atom("z")) != nil {
		t.Error("invalid ReplaceAt path not nil")
	}
	// Root replacement.
	if !tm.ReplaceAt(nil, newQ()).Equal(newQ()) {
		t.Error("root ReplaceAt wrong")
	}
	pos := tm.Positions()
	if len(pos) != tm.Size() {
		t.Errorf("Positions = %d, Size = %d", len(pos), tm.Size())
	}
	// Every position addresses a subterm.
	for _, p := range pos {
		if tm.At(p) == nil {
			t.Errorf("Positions produced invalid path %v", p)
		}
	}
}

func TestSubtermsWalk(t *testing.T) {
	tm := add(newQ(), atom("x"))
	subs := tm.Subterms()
	if len(subs) != 3 {
		t.Errorf("Subterms = %d", len(subs))
	}
	// Walk can prune.
	count := 0
	tm.Walk(func(u *Term) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d", count)
	}
}

func TestRename(t *testing.T) {
	tm := add(qvar("q"), NewVar("i", "Item"))
	r := tm.Rename(func(s string) string { return s + "1" })
	if got := r.Vars(); got[0].Sym != "q1" || got[1].Sym != "i1" {
		t.Errorf("Rename = %v", got)
	}
	// No variables: same pointer (sharing preserved).
	g := add(newQ(), atom("x"))
	if g.Rename(func(s string) string { return s + "1" }) != g {
		t.Error("Rename copied a ground term")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    *Term
		want string
	}{
		{newQ(), "new"},
		{add(newQ(), atom("x")), "add(new, 'x)"},
		{NewErr("Queue"), "error"},
		{qvar("q"), "q"},
		{NewIf(isEmpty(qvar("q")), atom("x"), front(qvar("q"))), "if isEmpty?(q) then 'x else front(q)"},
		{True(), "true"},
		{False(), "false"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains(add(newQ(), atom("x")).GoString(), "Queue") {
		t.Error("GoString lacks sorts")
	}
}

func TestPredicates(t *testing.T) {
	if !True().IsTrue() || True().IsFalse() {
		t.Error("True predicates wrong")
	}
	if !False().IsFalse() || False().IsTrue() {
		t.Error("False predicates wrong")
	}
	if !Bool(true).IsTrue() || !Bool(false).IsFalse() {
		t.Error("Bool builder wrong")
	}
	iff := NewIf(True(), newQ(), newQ())
	if !iff.IsIf() {
		t.Error("IsIf wrong")
	}
	if !NewErr("Q").IsErr() || newQ().IsErr() {
		t.Error("IsErr wrong")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	terms := make([]*Term, 50)
	for i := range terms {
		terms[i] = randomTerm(rng, 3)
	}
	for _, a := range terms {
		if Compare(a, a) != 0 {
			t.Fatalf("Compare(%s, itself) != 0", a)
		}
		for _, b := range terms {
			if Compare(a, b) != -Compare(b, a) {
				t.Fatalf("antisymmetry fails for %s vs %s", a, b)
			}
			if a.Equal(b) != (Compare(a, b) == 0) {
				t.Fatalf("Compare/Equal disagree for %s vs %s", a, b)
			}
		}
	}
	SortTerms(terms)
	for i := 1; i < len(terms); i++ {
		if Compare(terms[i-1], terms[i]) > 0 {
			t.Fatal("SortTerms not sorted")
		}
	}
}

func TestFreshName(t *testing.T) {
	tm := add(qvar("q"), NewVar("q1", "Item"))
	got := FreshName("q", tm)
	if got == "q" || got == "q1" {
		t.Errorf("FreshName = %q collides", got)
	}
	if FreshName("zz", tm) != "zz" {
		t.Error("FreshName renamed unnecessarily")
	}
}

// Property: ReplaceAt(p, At(p)) is identity (up to Equal).
func TestQuickReplaceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tm := randomTerm(r, 4)
		for _, p := range tm.Positions() {
			sub := tm.At(p)
			if sub == nil {
				return false
			}
			if !tm.ReplaceAt(p, sub).Equal(tm) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Size equals the number of Positions; Depth is bounded by Size.
func TestQuickSizeDepthInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tm := randomTerm(r, 5)
		return tm.Size() == len(tm.Positions()) && tm.Depth() <= tm.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewIfSort(t *testing.T) {
	iff := NewIf(True(), atom("x"), atom("y"))
	if iff.Sort != "Item" {
		t.Errorf("if sort = %s", iff.Sort)
	}
}

func TestVarsDeterministic(t *testing.T) {
	tm := add(add(qvar("b"), NewVar("a", "Item")), NewVar("c", "Item"))
	got := tm.Vars()
	want := []string{"b", "a", "c"}
	names := make([]string, len(got))
	for i, v := range got {
		names[i] = v.Sym
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Vars order = %v, want %v", names, want)
	}
}
