//go:build !race

package algspec

// raceEnabled mirrors the race build tag for tests whose thresholds
// (allocation counts, timing) only hold without the detector's
// instrumentation.
const raceEnabled = false
