//go:build race

package algspec

const raceEnabled = true
