package specs_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"algspec/internal/core"
	"algspec/internal/loadgen"
	"algspec/internal/rewrite"
)

var update = flag.Bool("update", false, "rewrite specs/golden/*.golden from current engine output")

// localBatteries extends the loadgen term battery to the specs shipped
// in this directory (which are not part of the embedded library).
var localBatteries = map[string][]string{
	"Counter": {
		"value(start)",
		"value(inc(inc(inc(start))))",
		"value(undo(inc(inc(start))))",
		"value(undo(inc(start)))",
	},
	"Graph": {
		"hasEdge?(emptyg, 'a, 'b)",
		"hasEdge?(addEdge(emptyg, 'a, 'b), 'a, 'b)",
		"hasEdge?(addEdge(emptyg, 'a, 'b), 'a, 'c)",
		"hasEdge?(addEdge(addEdge(emptyg, 'a, 'b), 'b, 'c), 'b, 'c)",
	},
	"PQueue": {
		"isEmptyPQ?(emptypq)",
		"isEmptyPQ?(insertpq(emptypq, zero))",
		"minpq(insertpq(insertpq(emptypq, succ(zero)), zero))",
		"minpq(deleteMin(insertpq(insertpq(emptypq, succ(zero)), zero)))",
	},
}

// corpusFor renders the golden-file body for one spec under the given
// engine options. The default (no options) is the compiled tier; the
// conformance test renders the same battery under WithoutCompiledTier
// as well and requires the two renderings to be byte-identical, so the
// committed corpus pins both engines at once.
func corpusFor(t *testing.T, env *core.Env, spec string, terms []string, opts ...rewrite.Option) string {
	t.Helper()
	sys, err := env.System(spec)
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	if len(opts) > 0 {
		sys = sys.Fork(opts...)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- Golden normal forms for %s.\n", spec)
	fmt.Fprintf(&b, "-- Regenerate: go test ./specs -run Golden -update\n")
	for _, src := range terms {
		tm, err := env.ParseTerm(spec, src)
		if err != nil {
			t.Fatalf("%s: %q: %v", spec, src, err)
		}
		nf, err := sys.Normalize(tm)
		if err != nil {
			t.Fatalf("%s: %q: %v", spec, src, err)
		}
		fmt.Fprintf(&b, "\n%s\n  => %s\n", src, nf)
	}
	return b.String()
}

// TestGoldenConformance pins the normal form of a fixed term battery
// over every shipped spec — library and local — byte-for-byte against
// specs/golden/, evaluated under both the compiled tier and the
// interpreter. A diff here means the rewrite engine's observable
// behaviour changed: either fix the regression or, if the change is
// intended, regenerate with
//
//	go test ./specs -run Golden -update
//
// and commit the new corpus. CI regenerates and fails on drift, so the
// corpus can never silently rot.
func TestGoldenConformance(t *testing.T) {
	env, _ := loadAll(t)

	batteries := make(map[string][]string)
	for _, spec := range loadgen.BatterySpecs() {
		batteries[spec] = loadgen.Battery(spec)
	}
	for spec, terms := range localBatteries {
		batteries[spec] = terms
	}
	specs := make([]string, 0, len(batteries))
	for spec := range batteries {
		specs = append(specs, spec)
	}
	sort.Strings(specs)

	for _, spec := range specs {
		got := corpusFor(t, env, spec, batteries[spec])
		interp := corpusFor(t, env, spec, batteries[spec], rewrite.WithoutCompiledTier())
		if got != interp {
			t.Errorf("%s: compiled and interpreter tiers disagree on the golden battery:\n--- compiled ---\n%s--- interp ---\n%s",
				spec, got, interp)
		}
		path := filepath.Join("golden", strings.ToLower(spec)+".golden")
		if *update {
			if err := os.MkdirAll("golden", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to generate the corpus)", spec, err)
		}
		if string(want) != got {
			t.Errorf("%s: engine output drifted from %s:\n--- want ---\n%s--- got ---\n%s",
				spec, path, want, got)
		}
	}

	// The corpus must not hold files for specs that no longer exist —
	// stale goldens would dodge the drift check forever.
	if !*update {
		files, err := filepath.Glob(filepath.Join("golden", "*.golden"))
		if err != nil {
			t.Fatal(err)
		}
		known := make(map[string]bool, len(specs))
		for _, spec := range specs {
			known[strings.ToLower(spec)+".golden"] = true
		}
		for _, f := range files {
			if !known[filepath.Base(f)] {
				t.Errorf("stale golden file %s has no matching spec", f)
			}
		}
	}
}
