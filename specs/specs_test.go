// Package specs_test keeps the shipped .spec files honest: each must
// load against the library, pass both checkers, and evaluate its
// documented example.
package specs_test

import (
	"os"
	"path/filepath"
	"testing"

	"algspec/internal/complete"
	"algspec/internal/consist"
	"algspec/internal/core"
	"algspec/internal/speclib"
)

func loadAll(t *testing.T) (*core.Env, []string) {
	t.Helper()
	env := core.NewEnv()
	env.MustLoad(speclib.Sources...)
	files, err := filepath.Glob("*.spec")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .spec files found")
	}
	var names []string
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		sps, err := env.Load(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, sp := range sps {
			names = append(names, sp.Name)
		}
	}
	return env, names
}

func TestShippedSpecsCheckClean(t *testing.T) {
	env, names := loadAll(t)
	for _, name := range names {
		sp := env.MustGet(name)
		if r := complete.Check(sp); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
		if r := consist.Check(sp); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
		if r := complete.CheckDynamic(sp, complete.DynamicConfig{Depth: 3, MaxTermsPerOp: 300}); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
	}
}

func TestShippedSpecsBehave(t *testing.T) {
	env, _ := loadAll(t)
	cases := []struct{ spec, in, want string }{
		{"Counter", "value(undo(inc(inc(start))))", "succ(zero)"},
		{"Counter", "undo(start)", "error"},
		{"PQueue", "minpq(insertpq(insertpq(emptypq, succ(zero)), zero))", "zero"},
		{"PQueue", "minpq(deleteMin(insertpq(insertpq(emptypq, succ(zero)), zero)))", "succ(zero)"},
		{"PQueue", "deleteMin(emptypq)", "error"},
		{"Graph", "hasEdge?(addEdge(addEdge(emptyg, 'a, 'b), 'b, 'c), 'a, 'b)", "true"},
		{"Graph", "hasEdge?(addEdge(emptyg, 'a, 'b), 'b, 'a)", "false"},
	}
	for _, c := range cases {
		got, err := env.Eval(c.spec, c.in)
		if err != nil {
			t.Errorf("%s: %s: %v", c.spec, c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("%s: %s = %s, want %s", c.spec, c.in, got, c.want)
		}
	}
}

// The priority queue's min really is insertion-order independent: all
// permutations of three inserts agree.
func TestPQueueOrderIndependence(t *testing.T) {
	env, _ := loadAll(t)
	nums := []string{"zero", "succ(zero)", "succ(succ(zero))"}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		tm := "emptypq"
		for _, i := range p {
			tm = "insertpq(" + tm + ", " + nums[i] + ")"
		}
		if got := env.MustEval("PQueue", "minpq("+tm+")"); got.String() != "zero" {
			t.Errorf("perm %v: min = %s", p, got)
		}
		if got := env.MustEval("PQueue", "minpq(deleteMin("+tm+"))"); got.String() != "succ(zero)" {
			t.Errorf("perm %v: second min = %s", p, got)
		}
	}
}
