// Package specs_test keeps the shipped .spec files honest: each must
// load against the library, pass every checker the toolchain has —
// completeness, consistency (static and ground), the axiom-as-oracle
// property harness — and, where an implementation or representation is
// given here, the model checker and the homomorphism verifier too.
package specs_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"algspec/internal/axtest"
	"algspec/internal/complete"
	"algspec/internal/consist"
	"algspec/internal/core"
	"algspec/internal/homo"
	"algspec/internal/model"
	"algspec/internal/sig"
	"algspec/internal/spec"
	"algspec/internal/speclib"
	"algspec/internal/term"
)

func loadAll(t *testing.T) (*core.Env, []string) {
	t.Helper()
	env := core.NewEnv()
	env.MustLoad(speclib.Sources...)
	files, err := filepath.Glob("*.spec")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .spec files found")
	}
	var names []string
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		sps, err := env.Load(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, sp := range sps {
			names = append(names, sp.Name)
		}
	}
	return env, names
}

func TestShippedSpecsCheckClean(t *testing.T) {
	env, names := loadAll(t)
	for _, name := range names {
		sp := env.MustGet(name)
		if r := complete.Check(sp); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
		if r := consist.Check(sp); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
		if r := complete.CheckDynamic(sp, complete.DynamicConfig{Depth: 3, MaxTermsPerOp: 300}); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
		if r := consist.CheckGround(sp, consist.GroundConfig{Depth: 3, MaxTermsPerOp: 300}); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
	}
}

// TestShippedSpecsOracle runs the property harness over every shipped
// spec: each axiom, instantiated with generated ground values, must hold
// under normalization. A fixed seed keeps the run reproducible.
func TestShippedSpecsOracle(t *testing.T) {
	env, names := loadAll(t)
	for _, name := range names {
		sp := env.MustGet(name)
		rep := axtest.CheckAxioms(sp, axtest.Config{N: 32, Seed: 7})
		if !rep.OK() {
			t.Errorf("%s:\n%s", name, rep)
		}
		if rep.Instances == 0 {
			t.Errorf("%s: oracle checked zero instances", name)
		}
	}
}

// TestShippedSpecsEnginesAgree runs the differential driver over every
// shipped spec: all engine configurations must agree on every corpus
// term.
func TestShippedSpecsEnginesAgree(t *testing.T) {
	env, names := loadAll(t)
	for _, name := range names {
		sp := env.MustGet(name)
		rep := axtest.CheckEngines(sp, axtest.DiffConfig{Depth: 2, PerOp: 40, RandomPerOp: 10, Seed: 7})
		if !rep.OK() {
			t.Errorf("%s:\n%s", name, rep)
		}
		if rep.Corpus == 0 {
			t.Errorf("%s: differential corpus is empty", name)
		}
	}
}

func TestShippedSpecsBehave(t *testing.T) {
	env, _ := loadAll(t)
	cases := []struct{ spec, in, want string }{
		{"Counter", "value(undo(inc(inc(start))))", "succ(zero)"},
		{"Counter", "undo(start)", "error"},
		{"PQueue", "minpq(insertpq(insertpq(emptypq, succ(zero)), zero))", "zero"},
		{"PQueue", "minpq(deleteMin(insertpq(insertpq(emptypq, succ(zero)), zero)))", "succ(zero)"},
		{"PQueue", "deleteMin(emptypq)", "error"},
		{"Graph", "hasEdge?(addEdge(addEdge(emptyg, 'a, 'b), 'b, 'c), 'a, 'b)", "true"},
		{"Graph", "hasEdge?(addEdge(emptyg, 'a, 'b), 'b, 'a)", "false"},
	}
	for _, c := range cases {
		got, err := env.Eval(c.spec, c.in)
		if err != nil {
			t.Errorf("%s: %s: %v", c.spec, c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("%s: %s = %s, want %s", c.spec, c.in, got, c.want)
		}
	}
}

// The priority queue's min really is insertion-order independent: all
// permutations of three inserts agree.
func TestPQueueOrderIndependence(t *testing.T) {
	env, _ := loadAll(t)
	nums := []string{"zero", "succ(zero)", "succ(succ(zero))"}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		tm := "emptypq"
		for _, i := range p {
			tm = "insertpq(" + tm + ", " + nums[i] + ")"
		}
		if got := env.MustEval("PQueue", "minpq("+tm+")"); got.String() != "zero" {
			t.Errorf("perm %v: min = %s", p, got)
		}
		if got := env.MustEval("PQueue", "minpq(deleteMin("+tm+"))"); got.String() != "succ(zero)" {
			t.Errorf("perm %v: second min = %s", p, got)
		}
	}
}

// ---------------------------------------------------------------------
// Model checking: native Go implementations of the shipped specs, tested
// against nothing but the axioms (the paper's §5 discipline). The tiny
// adapter kit below mirrors internal/adt/adapters without importing its
// unexported plumbing, so this package stays a client of public APIs.
// ---------------------------------------------------------------------

type opTable map[string]func(args []model.Value) (model.Value, error)

func (t opTable) apply(op string, args []model.Value) (model.Value, error) {
	f, ok := t[op]
	if !ok {
		return nil, fmt.Errorf("specs_test: operation %s not implemented", op)
	}
	return f(args)
}

func asBool(v model.Value) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("specs_test: want bool, got %T", v)
	}
	return b, nil
}

func asInt(v model.Value) (int, error) {
	n, ok := v.(int)
	if !ok {
		return 0, fmt.Errorf("specs_test: want int, got %T", v)
	}
	return n, nil
}

func asString(v model.Value) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("specs_test: want string, got %T", v)
	}
	return s, nil
}

func boolOps(t opTable) {
	t["true"] = func([]model.Value) (model.Value, error) { return true, nil }
	t["false"] = func([]model.Value) (model.Value, error) { return false, nil }
	t["not"] = func(a []model.Value) (model.Value, error) {
		b, err := asBool(a[0])
		return !b, err
	}
	t["and"] = func(a []model.Value) (model.Value, error) {
		x, err := asBool(a[0])
		if err != nil {
			return nil, err
		}
		y, err := asBool(a[1])
		return x && y, err
	}
	t["or"] = func(a []model.Value) (model.Value, error) {
		x, err := asBool(a[0])
		if err != nil {
			return nil, err
		}
		y, err := asBool(a[1])
		return x || y, err
	}
}

func natOps(t opTable) {
	t["zero"] = func([]model.Value) (model.Value, error) { return 0, nil }
	t["succ"] = func(a []model.Value) (model.Value, error) {
		n, err := asInt(a[0])
		return n + 1, err
	}
	t["pred"] = func(a []model.Value) (model.Value, error) {
		n, err := asInt(a[0])
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return model.ErrValue, nil
		}
		return n - 1, nil
	}
	t["addN"] = func(a []model.Value) (model.Value, error) {
		m, err := asInt(a[0])
		if err != nil {
			return nil, err
		}
		n, err := asInt(a[1])
		return m + n, err
	}
	t["eqN"] = func(a []model.Value) (model.Value, error) {
		m, err := asInt(a[0])
		if err != nil {
			return nil, err
		}
		n, err := asInt(a[1])
		return m == n, err
	}
	t["ltN"] = func(a []model.Value) (model.Value, error) {
		m, err := asInt(a[0])
		if err != nil {
			return nil, err
		}
		n, err := asInt(a[1])
		return m < n, err
	}
}

func stdReify(sp *spec.Spec) func(so sig.Sort, v model.Value) (*term.Term, bool, error) {
	return func(so sig.Sort, v model.Value) (*term.Term, bool, error) {
		switch {
		case so == sig.BoolSort:
			b, err := asBool(v)
			if err != nil {
				return nil, false, err
			}
			return term.Bool(b), true, nil
		case so == "Nat" && sp.Sig.HasSort("Nat"):
			n, err := asInt(v)
			if err != nil {
				return nil, false, err
			}
			t := term.NewOp("zero", "Nat")
			for i := 0; i < n; i++ {
				t = term.NewOp("succ", "Nat", t)
			}
			return t, true, nil
		case sp.Sig.IsAtomSort(so) || sp.Sig.IsParam(so):
			s, err := asString(v)
			if err != nil {
				return nil, false, err
			}
			return term.NewAtom(s, so), true, nil
		default:
			return nil, false, nil
		}
	}
}

func buildImpl(sp *spec.Spec, t opTable) *model.Impl {
	return &model.Impl{
		SpecName: sp.Name,
		Apply:    t.apply,
		Atom: func(so sig.Sort, spelling string) (model.Value, error) {
			return spelling, nil
		},
		Reify: stdReify(sp),
	}
}

// counterImpl represents a Counter as the int count of net increments;
// undo on zero is the boundary error.
func counterImpl(sp *spec.Spec) *model.Impl {
	t := opTable{}
	boolOps(t)
	natOps(t)
	t["start"] = func([]model.Value) (model.Value, error) { return 0, nil }
	t["inc"] = func(a []model.Value) (model.Value, error) {
		c, err := asInt(a[0])
		return c + 1, err
	}
	t["undo"] = func(a []model.Value) (model.Value, error) {
		c, err := asInt(a[0])
		if err != nil {
			return nil, err
		}
		if c == 0 {
			return model.ErrValue, nil
		}
		return c - 1, nil
	}
	t["value"] = func(a []model.Value) (model.Value, error) {
		c, err := asInt(a[0])
		return c, err
	}
	return buildImpl(sp, t)
}

// graphImpl represents a Graph as an (immutable) slice of directed edges
// over Identifier spellings.
type graphEdge struct{ from, to string }

func graphImpl(sp *spec.Spec) *model.Impl {
	t := opTable{}
	boolOps(t)
	t["same?"] = func(a []model.Value) (model.Value, error) {
		x, err := asString(a[0])
		if err != nil {
			return nil, err
		}
		y, err := asString(a[1])
		return x == y, err
	}
	asG := func(v model.Value) ([]graphEdge, error) {
		g, ok := v.([]graphEdge)
		if !ok {
			return nil, fmt.Errorf("specs_test: want graph, got %T", v)
		}
		return g, nil
	}
	t["emptyg"] = func([]model.Value) (model.Value, error) { return []graphEdge{}, nil }
	t["addEdge"] = func(a []model.Value) (model.Value, error) {
		g, err := asG(a[0])
		if err != nil {
			return nil, err
		}
		from, err := asString(a[1])
		if err != nil {
			return nil, err
		}
		to, err := asString(a[2])
		if err != nil {
			return nil, err
		}
		out := make([]graphEdge, len(g), len(g)+1)
		copy(out, g)
		return append(out, graphEdge{from, to}), nil
	}
	t["hasEdge?"] = func(a []model.Value) (model.Value, error) {
		g, err := asG(a[0])
		if err != nil {
			return nil, err
		}
		from, err := asString(a[1])
		if err != nil {
			return nil, err
		}
		to, err := asString(a[2])
		if err != nil {
			return nil, err
		}
		for _, e := range g {
			if e.from == from && e.to == to {
				return true, nil
			}
		}
		return false, nil
	}
	return buildImpl(sp, t)
}

// pqueueImpl represents a PQueue as an ascending-sorted int slice
// (a multiset: duplicates are kept).
func pqueueImpl(sp *spec.Spec) *model.Impl {
	t := opTable{}
	boolOps(t)
	natOps(t)
	asQ := func(v model.Value) ([]int, error) {
		q, ok := v.([]int)
		if !ok {
			return nil, fmt.Errorf("specs_test: want pqueue, got %T", v)
		}
		return q, nil
	}
	t["emptypq"] = func([]model.Value) (model.Value, error) { return []int{}, nil }
	t["insertpq"] = func(a []model.Value) (model.Value, error) {
		q, err := asQ(a[0])
		if err != nil {
			return nil, err
		}
		n, err := asInt(a[1])
		if err != nil {
			return nil, err
		}
		out := make([]int, 0, len(q)+1)
		i := 0
		for ; i < len(q) && q[i] <= n; i++ {
			out = append(out, q[i])
		}
		out = append(out, n)
		return append(out, q[i:]...), nil
	}
	t["minpq"] = func(a []model.Value) (model.Value, error) {
		q, err := asQ(a[0])
		if err != nil {
			return nil, err
		}
		if len(q) == 0 {
			return model.ErrValue, nil
		}
		return q[0], nil
	}
	t["deleteMin"] = func(a []model.Value) (model.Value, error) {
		q, err := asQ(a[0])
		if err != nil {
			return nil, err
		}
		if len(q) == 0 {
			return model.ErrValue, nil
		}
		out := make([]int, len(q)-1)
		copy(out, q[1:])
		return out, nil
	}
	t["isEmptyPQ?"] = func(a []model.Value) (model.Value, error) {
		q, err := asQ(a[0])
		return len(q) == 0, err
	}
	return buildImpl(sp, t)
}

// TestShippedSpecsModelCheck runs both model checks for each shipped
// spec's Go implementation: the axioms must hold on the implementation,
// and the implementation must agree with the symbolic interpretation on
// every ground observer term.
func TestShippedSpecsModelCheck(t *testing.T) {
	env, _ := loadAll(t)
	impls := []struct {
		spec  string
		build func(*spec.Spec) *model.Impl
	}{
		{"Counter", counterImpl},
		{"Graph", graphImpl},
		{"PQueue", pqueueImpl},
	}
	for _, im := range impls {
		t.Run(im.spec, func(t *testing.T) {
			sp := env.MustGet(im.spec)
			impl := im.build(sp)
			cfg := model.Config{Depth: 3, MaxInstancesPerAxiom: 400}
			if r := model.CheckAxioms(sp, impl, cfg); !r.OK() {
				t.Errorf("CheckAxioms: %s", r)
			}
			if r := model.CheckAgainstSpec(sp, impl, cfg); !r.OK() {
				t.Errorf("CheckAgainstSpec: %s", r)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Homomorphism verification: each shipped spec gets a concrete
// representation spec (the implementation written algebraically) and an
// abstraction function Φ, and the verifier discharges every abstract
// axiom under the interpretation — the paper's §4 proof obligation,
// mechanized.
// ---------------------------------------------------------------------

// counterImplSpec represents a Counter directly as the Nat it counts:
// Φ(zero) = start, Φ(succ(n)) = inc(Φ(n)).
const counterImplSpec = `
spec CounterImpl
  uses Bool, Nat

  ops
    start' : -> Nat
    inc'   : Nat -> Nat
    undo'  : Nat -> Nat
    value' : Nat -> Nat

  vars
    n : Nat

  axioms
    [s1] start' = zero
    [i1] inc'(n) = succ(n)
    [u1] undo'(n) = pred(n)
    [v1] value'(n) = n
end
`

// graphImplSpec represents a Graph as a raw edge list; Φ folds consEL
// back into addEdge.
const graphImplSpec = `
spec GraphImpl
  uses Bool, Identifier

  sorts
    EdgeList

  ops
    nilEL     : -> EdgeList
    consEL    : EdgeList, Identifier, Identifier -> EdgeList
    emptyg'   : -> EdgeList
    addEdge'  : EdgeList, Identifier, Identifier -> EdgeList
    hasEdge'? : EdgeList, Identifier, Identifier -> Bool

  vars
    l : EdgeList
    a, b, x, y : Identifier

  axioms
    [g1] emptyg' = nilEL
    [g2] addEdge'(l, a, b) = consEL(l, a, b)
    [h1] hasEdge'?(nilEL, x, y) = false
    [h2] hasEdge'?(consEL(l, a, b), x, y) = if and(same?(a, x), same?(b, y)) then true else hasEdge'?(l, x, y)
end
`

// pqueueImplSpec represents a PQueue as an ascending-sorted Nat list
// (insertion maintains order; min and deleteMin are head and tail);
// Φ folds consNL back into insertpq, which makes the representation
// unconditionally correct — Φ re-sorts whatever the list shape is.
const pqueueImplSpec = `
spec PQueueImpl
  uses Bool, Nat

  sorts
    NatList

  ops
    nilNL       : -> NatList
    consNL      : Nat, NatList -> NatList
    emptypq'    : -> NatList
    insertpq'   : NatList, Nat -> NatList
    minpq'      : NatList -> Nat
    deleteMin'  : NatList -> NatList
    isEmptyPQ'? : NatList -> Bool

  vars
    l : NatList
    m, n : Nat

  axioms
    [p1] emptypq' = nilNL
    [p2] insertpq'(nilNL, n) = consNL(n, nilNL)
    [p3] insertpq'(consNL(m, l), n) = if ltN(n, m) then consNL(n, consNL(m, l)) else consNL(m, insertpq'(l, n))
    [q1] isEmptyPQ'?(nilNL) = true
    [q2] isEmptyPQ'?(consNL(n, l)) = false
    [m1] minpq'(nilNL) = error
    [m2] minpq'(consNL(n, l)) = n
    [d1] deleteMin'(nilNL) = error
    [d2] deleteMin'(consNL(n, l)) = l
end
`

// TestShippedSpecsRepresentations verifies each representation's
// homomorphism: every abstract axiom must hold under the concrete
// interpretation, for all generated representation values.
func TestShippedSpecsRepresentations(t *testing.T) {
	env, _ := loadAll(t)
	for _, src := range []string{counterImplSpec, graphImplSpec, pqueueImplSpec} {
		if _, err := env.Load(src); err != nil {
			t.Fatal(err)
		}
	}
	reps := []struct {
		name string
		rep  homo.Representation
	}{
		{
			name: "CounterAsNat",
			rep: homo.Representation{
				Abstract: env.MustGet("Counter"),
				Concrete: env.MustGet("CounterImpl"),
				AbsSort:  "Counter",
				RepSort:  "Nat",
				OpMap: map[string]string{
					"start": "start'",
					"inc":   "inc'",
					"undo":  "undo'",
					"value": "value'",
				},
				PhiRules: [][2]string{
					{"phi(zero)", "start"},
					{"phi(succ(n))", "inc(phi(n))"},
				},
				PhiVars: map[string]sig.Sort{"n": "Nat"},
			},
		},
		{
			name: "GraphAsEdgeList",
			rep: homo.Representation{
				Abstract: env.MustGet("Graph"),
				Concrete: env.MustGet("GraphImpl"),
				AbsSort:  "Graph",
				RepSort:  "EdgeList",
				OpMap: map[string]string{
					"emptyg":   "emptyg'",
					"addEdge":  "addEdge'",
					"hasEdge?": "hasEdge'?",
				},
				PhiRules: [][2]string{
					{"phi(nilEL)", "emptyg"},
					{"phi(consEL(l, a, b))", "addEdge(phi(l), a, b)"},
				},
				PhiVars: map[string]sig.Sort{
					"l": "EdgeList",
					"a": "Identifier",
					"b": "Identifier",
				},
			},
		},
		{
			name: "PQueueAsNatList",
			rep: homo.Representation{
				Abstract: env.MustGet("PQueue"),
				Concrete: env.MustGet("PQueueImpl"),
				AbsSort:  "PQueue",
				RepSort:  "NatList",
				OpMap: map[string]string{
					"emptypq":    "emptypq'",
					"insertpq":   "insertpq'",
					"minpq":      "minpq'",
					"deleteMin":  "deleteMin'",
					"isEmptyPQ?": "isEmptyPQ'?",
				},
				PhiRules: [][2]string{
					{"phi(nilNL)", "emptypq"},
					{"phi(consNL(n, l))", "insertpq(phi(l), n)"},
				},
				PhiVars: map[string]sig.Sort{
					"n": "Nat",
					"l": "NatList",
				},
			},
		},
	}
	for _, rc := range reps {
		t.Run(rc.name, func(t *testing.T) {
			v, err := homo.New(rc.rep)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := v.Verify(homo.Config{Depth: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("representation not verified:\n%s", rep)
			}
		})
	}
}
