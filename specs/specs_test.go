// Package specs_test keeps the shipped .spec files honest: each must
// load against the library, pass every checker the toolchain has —
// completeness, consistency (static and ground), the axiom-as-oracle
// property harness — and, where an implementation or representation is
// given here, the model checker and the homomorphism verifier too.
package specs_test

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"algspec/internal/axtest"
	"algspec/internal/complete"
	"algspec/internal/completion"
	"algspec/internal/consist"
	"algspec/internal/core"
	"algspec/internal/homo"
	"algspec/internal/model"
	"algspec/internal/refimpl"
	"algspec/internal/sig"
	"algspec/internal/speclib"
)

func loadAll(t *testing.T) (*core.Env, []string) {
	t.Helper()
	env := core.NewEnv()
	env.MustLoad(speclib.Sources...)
	files, err := filepath.Glob("*.spec")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no .spec files found")
	}
	var names []string
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		sps, err := env.Load(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, sp := range sps {
			names = append(names, sp.Name)
		}
	}
	return env, names
}

func TestShippedSpecsCheckClean(t *testing.T) {
	env, names := loadAll(t)
	for _, name := range names {
		sp := env.MustGet(name)
		if r := complete.Check(sp); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
		if r := consist.Check(sp); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
		if r := complete.CheckDynamic(sp, complete.DynamicConfig{Depth: 3, MaxTermsPerOp: 300}); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
		if r := consist.CheckGround(sp, consist.GroundConfig{Depth: 3, MaxTermsPerOp: 300}); !r.OK() {
			t.Errorf("%s: %s", name, r)
		}
	}
}

// TestShippedSpecsOracle runs the property harness over every shipped
// spec: each axiom, instantiated with generated ground values, must hold
// under normalization. A fixed seed keeps the run reproducible.
func TestShippedSpecsOracle(t *testing.T) {
	env, names := loadAll(t)
	for _, name := range names {
		sp := env.MustGet(name)
		rep := axtest.CheckAxioms(sp, axtest.Config{N: 32, Seed: 7})
		if !rep.OK() {
			t.Errorf("%s:\n%s", name, rep)
		}
		if rep.Instances == 0 {
			t.Errorf("%s: oracle checked zero instances", name)
		}
	}
}

// TestShippedSpecsEnginesAgree runs the differential driver over every
// shipped spec: all engine configurations must agree on every corpus
// term.
func TestShippedSpecsEnginesAgree(t *testing.T) {
	env, names := loadAll(t)
	strengthened := 0
	for _, name := range names {
		sp := env.MustGet(name)
		// Certified specs also run the outermost engines and must reach
		// identical normal forms (the certificate's unique-NF claim).
		all := completion.Complete(sp, completion.Config{}).Certified()
		if all {
			strengthened++
		}
		rep := axtest.CheckEngines(sp, axtest.DiffConfig{Depth: 2, PerOp: 40, RandomPerOp: 10, Seed: 7, AllStrategies: all})
		if !rep.OK() {
			t.Errorf("%s:\n%s", name, rep)
		}
		if rep.Corpus == 0 {
			t.Errorf("%s: differential corpus is empty", name)
		}
	}
	if strengthened == 0 {
		t.Error("no shipped spec ran the strengthened all-strategies mode")
	}
}

func TestShippedSpecsBehave(t *testing.T) {
	env, _ := loadAll(t)
	cases := []struct{ spec, in, want string }{
		{"Counter", "value(undo(inc(inc(start))))", "succ(zero)"},
		{"Counter", "undo(start)", "error"},
		{"PQueue", "minpq(insertpq(insertpq(emptypq, succ(zero)), zero))", "zero"},
		{"PQueue", "minpq(deleteMin(insertpq(insertpq(emptypq, succ(zero)), zero)))", "succ(zero)"},
		{"PQueue", "deleteMin(emptypq)", "error"},
		{"Graph", "hasEdge?(addEdge(addEdge(emptyg, 'a, 'b), 'b, 'c), 'a, 'b)", "true"},
		{"Graph", "hasEdge?(addEdge(emptyg, 'a, 'b), 'b, 'a)", "false"},
	}
	for _, c := range cases {
		got, err := env.Eval(c.spec, c.in)
		if err != nil {
			t.Errorf("%s: %s: %v", c.spec, c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("%s: %s = %s, want %s", c.spec, c.in, got, c.want)
		}
	}
}

// The priority queue's min really is insertion-order independent: all
// permutations of three inserts agree.
func TestPQueueOrderIndependence(t *testing.T) {
	env, _ := loadAll(t)
	nums := []string{"zero", "succ(zero)", "succ(succ(zero))"}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		tm := "emptypq"
		for _, i := range p {
			tm = "insertpq(" + tm + ", " + nums[i] + ")"
		}
		if got := env.MustEval("PQueue", "minpq("+tm+")"); got.String() != "zero" {
			t.Errorf("perm %v: min = %s", p, got)
		}
		if got := env.MustEval("PQueue", "minpq(deleteMin("+tm+"))"); got.String() != "succ(zero)" {
			t.Errorf("perm %v: second min = %s", p, got)
		}
	}
}

// ---------------------------------------------------------------------
// Model checking: the native Go reference implementations of the shipped
// specs (internal/refimpl — also the implementations the conformance
// endpoint's e2e suite puts on the wire), tested against nothing but the
// axioms (the paper's §5 discipline).
// ---------------------------------------------------------------------

// TestShippedSpecsModelCheck runs both model checks for each shipped
// spec's Go reference implementation: the axioms must hold on the
// implementation, and the implementation must agree with the symbolic
// interpretation on every ground observer term.
func TestShippedSpecsModelCheck(t *testing.T) {
	env, _ := loadAll(t)
	builders := refimpl.Builders()
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		build := builders[name]
		t.Run(name, func(t *testing.T) {
			sp := env.MustGet(name)
			impl := build(sp)
			cfg := model.Config{Depth: 3, MaxInstancesPerAxiom: 400}
			if r := model.CheckAxioms(sp, impl, cfg); !r.OK() {
				t.Errorf("CheckAxioms: %s", r)
			}
			if r := model.CheckAgainstSpec(sp, impl, cfg); !r.OK() {
				t.Errorf("CheckAgainstSpec: %s", r)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Homomorphism verification: each shipped spec gets a concrete
// representation spec (the implementation written algebraically) and an
// abstraction function Φ, and the verifier discharges every abstract
// axiom under the interpretation — the paper's §4 proof obligation,
// mechanized.
// ---------------------------------------------------------------------

// counterImplSpec represents a Counter directly as the Nat it counts:
// Φ(zero) = start, Φ(succ(n)) = inc(Φ(n)).
const counterImplSpec = `
spec CounterImpl
  uses Bool, Nat

  ops
    start' : -> Nat
    inc'   : Nat -> Nat
    undo'  : Nat -> Nat
    value' : Nat -> Nat

  vars
    n : Nat

  axioms
    [s1] start' = zero
    [i1] inc'(n) = succ(n)
    [u1] undo'(n) = pred(n)
    [v1] value'(n) = n
end
`

// graphImplSpec represents a Graph as a raw edge list; Φ folds consEL
// back into addEdge.
const graphImplSpec = `
spec GraphImpl
  uses Bool, Identifier

  sorts
    EdgeList

  ops
    nilEL     : -> EdgeList
    consEL    : EdgeList, Identifier, Identifier -> EdgeList
    emptyg'   : -> EdgeList
    addEdge'  : EdgeList, Identifier, Identifier -> EdgeList
    hasEdge'? : EdgeList, Identifier, Identifier -> Bool

  vars
    l : EdgeList
    a, b, x, y : Identifier

  axioms
    [g1] emptyg' = nilEL
    [g2] addEdge'(l, a, b) = consEL(l, a, b)
    [h1] hasEdge'?(nilEL, x, y) = false
    [h2] hasEdge'?(consEL(l, a, b), x, y) = if and(same?(a, x), same?(b, y)) then true else hasEdge'?(l, x, y)
end
`

// pqueueImplSpec represents a PQueue as an ascending-sorted Nat list
// (insertion maintains order; min and deleteMin are head and tail);
// Φ folds consNL back into insertpq, which makes the representation
// unconditionally correct — Φ re-sorts whatever the list shape is.
const pqueueImplSpec = `
spec PQueueImpl
  uses Bool, Nat

  sorts
    NatList

  ops
    nilNL       : -> NatList
    consNL      : Nat, NatList -> NatList
    emptypq'    : -> NatList
    insertpq'   : NatList, Nat -> NatList
    minpq'      : NatList -> Nat
    deleteMin'  : NatList -> NatList
    isEmptyPQ'? : NatList -> Bool

  vars
    l : NatList
    m, n : Nat

  axioms
    [p1] emptypq' = nilNL
    [p2] insertpq'(nilNL, n) = consNL(n, nilNL)
    [p3] insertpq'(consNL(m, l), n) = if ltN(n, m) then consNL(n, consNL(m, l)) else consNL(m, insertpq'(l, n))
    [q1] isEmptyPQ'?(nilNL) = true
    [q2] isEmptyPQ'?(consNL(n, l)) = false
    [m1] minpq'(nilNL) = error
    [m2] minpq'(consNL(n, l)) = n
    [d1] deleteMin'(nilNL) = error
    [d2] deleteMin'(consNL(n, l)) = l
end
`

// TestShippedSpecsRepresentations verifies each representation's
// homomorphism: every abstract axiom must hold under the concrete
// interpretation, for all generated representation values.
func TestShippedSpecsRepresentations(t *testing.T) {
	env, _ := loadAll(t)
	for _, src := range []string{counterImplSpec, graphImplSpec, pqueueImplSpec} {
		if _, err := env.Load(src); err != nil {
			t.Fatal(err)
		}
	}
	reps := []struct {
		name string
		rep  homo.Representation
	}{
		{
			name: "CounterAsNat",
			rep: homo.Representation{
				Abstract: env.MustGet("Counter"),
				Concrete: env.MustGet("CounterImpl"),
				AbsSort:  "Counter",
				RepSort:  "Nat",
				OpMap: map[string]string{
					"start": "start'",
					"inc":   "inc'",
					"undo":  "undo'",
					"value": "value'",
				},
				PhiRules: [][2]string{
					{"phi(zero)", "start"},
					{"phi(succ(n))", "inc(phi(n))"},
				},
				PhiVars: map[string]sig.Sort{"n": "Nat"},
			},
		},
		{
			name: "GraphAsEdgeList",
			rep: homo.Representation{
				Abstract: env.MustGet("Graph"),
				Concrete: env.MustGet("GraphImpl"),
				AbsSort:  "Graph",
				RepSort:  "EdgeList",
				OpMap: map[string]string{
					"emptyg":   "emptyg'",
					"addEdge":  "addEdge'",
					"hasEdge?": "hasEdge'?",
				},
				PhiRules: [][2]string{
					{"phi(nilEL)", "emptyg"},
					{"phi(consEL(l, a, b))", "addEdge(phi(l), a, b)"},
				},
				PhiVars: map[string]sig.Sort{
					"l": "EdgeList",
					"a": "Identifier",
					"b": "Identifier",
				},
			},
		},
		{
			name: "PQueueAsNatList",
			rep: homo.Representation{
				Abstract: env.MustGet("PQueue"),
				Concrete: env.MustGet("PQueueImpl"),
				AbsSort:  "PQueue",
				RepSort:  "NatList",
				OpMap: map[string]string{
					"emptypq":    "emptypq'",
					"insertpq":   "insertpq'",
					"minpq":      "minpq'",
					"deleteMin":  "deleteMin'",
					"isEmptyPQ?": "isEmptyPQ'?",
				},
				PhiRules: [][2]string{
					{"phi(nilNL)", "emptypq"},
					{"phi(consNL(n, l))", "insertpq(phi(l), n)"},
				},
				PhiVars: map[string]sig.Sort{
					"n": "Nat",
					"l": "NatList",
				},
			},
		},
	}
	for _, rc := range reps {
		t.Run(rc.name, func(t *testing.T) {
			v, err := homo.New(rc.rep)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := v.Verify(homo.Config{Depth: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("representation not verified:\n%s", rep)
			}
		})
	}
}
